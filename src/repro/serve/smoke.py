"""End-to-end smoke drill for the serving plane (``repro-bench serve``).

One broker (RPC, in this process), two real node processes, four
concurrent clients -- and three correctness gates that make this a test,
not a demo:

1. **Coalescing**: all clients request overlapping patches of the same
   product concurrently; the primary node must report *exactly one*
   pipeline run, and every fetched slice must be byte-identical to a
   direct serverless ``produce`` of the same key.
2. **Failover**: the second round targets a key whose rendezvous-primary
   is a node armed with an injected NODE_CRASH (it ``os._exit``\\ s mid
   produce, like an OOM kill).  Every in-flight client must still get
   correct bytes -- served by the surviving node -- and the broker's
   breaker for the dead node must be open afterwards.
3. **No leaks**: after shutdown, no child process may survive and
   ``/dev/shm`` must be back to its pre-run contents (the slab-guard
   satellite fix is what makes this pass when nodes die mid-produce).

Any violated gate raises :class:`SmokeFailure`; the CLI maps that to a
nonzero exit for CI.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core import ImplementationType
from ..workflows.products import get_product
from ..workflows.satellite import SIZES
from .broker import Broker, BrokerServer, route_order
from .client import ServeClient
from .handles import ProductKey, SliceSpec
from .node import NodeServer, ServeNode
from .quota import QuotaPolicy
from .wire import PeerUnavailableError, call

__all__ = ["SmokeFailure", "run_serve_smoke"]

_SHM_DIR = "/dev/shm"


class SmokeFailure(AssertionError):
    """A smoke gate did not hold."""


def _node_main(
    node_id: str,
    broker_address: Tuple[str, int],
    ready,  # mp.Queue
    plan_name: Optional[str] = None,
    seed: int = 0,
    elastic_workers: int = 1,
) -> None:
    """Entry point of one node process: serve until told to shut down."""
    from ..resilience import named_plan, resilient

    node = ServeNode(
        node_id, exit_on_crash=True, elastic_workers=elastic_workers
    )
    server = NodeServer(node).start()
    call(
        broker_address,
        "register",
        node_id=node_id,
        namespaces=node.namespaces(),
        address=server.address,
    )
    ready.put(node_id)
    if plan_name is not None:
        with resilient(named_plan(plan_name, seed=seed)):
            server.wait_for_shutdown()
    else:
        server.wait_for_shutdown()
    server.stop()


def _shm_entries() -> Sequence[str]:
    try:
        return sorted(os.listdir(_SHM_DIR))
    except OSError:
        return ()


def _pick_realization(primary_of: str, key0: ProductKey, node_ids: List[str]) -> int:
    """The smallest realization whose rendezvous-primary is ``primary_of``.

    This is the trick that makes the failover round deterministic: the
    driver computes, with the same pure :func:`route_order` the broker
    uses, a key that is guaranteed to land first on the armed node.
    """
    for r in range(1, 64):
        key = ProductKey(key0.product, key0.size, key0.backend, realization=r)
        if route_order(key.describe(), node_ids)[0] == primary_of:
            return r
    raise SmokeFailure(f"no realization in [1, 64) routes to {primary_of}")


def _concurrent_requests(
    clients: Sequence[ServeClient],
    key: ProductKey,
    windows: Sequence[Optional[SliceSpec]],
) -> List[np.ndarray]:
    """All clients request at once; returns results in client order."""
    import threading

    results: List[Any] = [None] * len(clients)
    errors: List[Any] = [None] * len(clients)
    barrier = threading.Barrier(len(clients))

    def one(i: int) -> None:
        try:
            barrier.wait(timeout=30)
            results[i] = clients[i].request(key, windows[i])
        except BaseException as e:  # noqa: BLE001 - reported below
            errors[i] = e

    threads = [
        threading.Thread(target=one, args=(i,), daemon=True)
        for i in range(len(clients))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    failed = [(clients[i].client_id, e) for i, e in enumerate(errors) if e is not None]
    if failed:
        raise SmokeFailure(f"client requests failed: {failed}")
    return results


def run_serve_smoke(
    size: str = "tiny",
    n_clients: int = 4,
    seed: int = 0,
    verbose: bool = False,
    elastic_workers: int = 1,
) -> Dict[str, Any]:
    """Run the full drill; returns the report dict or raises SmokeFailure.

    With ``elastic_workers > 0`` (the default) every node runs its zmap
    pipeline through the elastic work-stealing pool, so the drill also
    gates the serve x parallel composition: node crashes, worker
    processes, and the leak sentinel all in one run.
    """
    if size not in SIZES:
        raise ValueError(f"unknown size {size!r}; known: {', '.join(sorted(SIZES))}")
    if n_clients < 4:
        raise ValueError("the drill needs at least 4 concurrent clients")

    def say(msg: str) -> None:
        if verbose:
            print(f"[serve-smoke] {msg}")

    shm_before = _shm_entries()
    children_before = {p.pid for p in mp.active_children()}

    # The serverless reference: what every served byte must equal.
    spec = SIZES[size]
    product = get_product("satellite/zmap")
    key0 = ProductKey("satellite/zmap", size, backend="numpy", realization=0)
    reference0 = product.producer(spec, ImplementationType.NUMPY, 0)

    node_ids = ["node-a", "node-b"]
    primary0 = route_order(key0.describe(), node_ids)[0]
    crash_node = next(n for n in node_ids if n != primary0)
    crash_r = _pick_realization(crash_node, key0, node_ids)
    key_crash = ProductKey(key0.product, size, key0.backend, realization=crash_r)
    reference_crash = product.producer(spec, ImplementationType.NUMPY, crash_r)
    say(
        f"routing: {key0.describe()} -> {primary0}; "
        f"{key_crash.describe()} -> {crash_node} (armed)"
    )

    ctx = mp.get_context("spawn")
    broker = Broker(policy=QuotaPolicy(max_inflight=n_clients + 2))
    broker_server = BrokerServer(broker).start()
    procs: List[mp.Process] = []
    ready = ctx.Queue()
    report: Dict[str, Any] = {
        "size": size,
        "n_clients": n_clients,
        "elastic_workers": elastic_workers,
        "ok": False,
    }
    try:
        with obs.tracing() as tracer:
            for nid in node_ids:
                plan = "serve-node-crash" if nid == crash_node else None
                p = ctx.Process(
                    target=_node_main,
                    args=(
                        nid,
                        broker_server.address,
                        ready,
                        plan,
                        seed,
                        elastic_workers,
                    ),
                    name=f"serve-{nid}",
                )
                p.start()
                procs.append(p)
            for _ in node_ids:
                ready.get(timeout=60)
            roster = call(broker_server.address, "roster")
            if sorted(roster) != sorted(node_ids):
                raise SmokeFailure(f"bad roster after registration: {roster}")
            say(f"roster: {roster}")

            clients = [
                ServeClient(f"client-{i}", broker_server.address)
                for i in range(n_clients)
            ]
            npix = reference0.shape[0]
            quarter = max(1, npix // 4)
            windows: List[Optional[SliceSpec]] = [
                SliceSpec.rows(0, 3 * quarter),          # overlapping patches
                SliceSpec.rows(quarter, npix),
                SliceSpec.rows(quarter, 3 * quarter),
                None,                                     # full read (crc check)
            ] + [SliceSpec.rows(0, npix) for _ in range(n_clients - 4)]

            # -- gate 1: coalescing + bytes ---------------------------------
            results = _concurrent_requests(clients, key0, windows)
            for i, (win, got) in enumerate(zip(windows, results)):
                want = reference0 if win is None else reference0[win.as_slices()]
                if not (got.shape == want.shape and np.array_equal(got, want)):
                    raise SmokeFailure(
                        f"round 1: client-{i} bytes differ from serverless "
                        f"reference for window {win.describe() if win else '[:]'}"
                    )
            primary_stats = _node_stats(roster, primary0)
            produces = primary_stats["counters"].get("produces", 0)
            if produces != 1:
                raise SmokeFailure(
                    f"round 1: expected exactly 1 pipeline run on {primary0}, "
                    f"saw {produces} (coalescing broke)"
                )
            if elastic_workers > 0:
                elastic_runs = primary_stats["counters"].get("elastic_produces", 0)
                if elastic_runs < 1:
                    raise SmokeFailure(
                        f"round 1: elastic_workers={elastic_workers} but "
                        f"{primary0} reports no elastic produce"
                    )
            say(f"round 1 ok: 1 produce on {primary0}, {n_clients} clients served")

            # -- gate 2: failover through a crashing node -------------------
            results = _concurrent_requests(
                clients, key_crash, [None] * n_clients
            )
            for i, got in enumerate(results):
                if not np.array_equal(got, reference_crash):
                    raise SmokeFailure(
                        f"round 2: client-{i} bytes differ after failover"
                    )
            stats = call(broker_server.address, "stats")
            breaker = stats["nodes"][crash_node]["breaker"]
            if breaker != "open":
                raise SmokeFailure(
                    f"round 2: {crash_node} died but its breaker is "
                    f"{breaker!r}, not open"
                )
            survivor = primary0
            survivor_stats = _node_stats(roster, survivor)
            say(
                f"round 2 ok: {crash_node} crashed, breaker open, "
                f"{survivor} served {survivor_stats['counters'].get('produces')}"
                " produce(s) total"
            )

            report["broker"] = stats
            report["trace_events"] = len(tracer.events)
            report["client_counters"] = {
                c.client_id: c.stats()["counters"] for c in clients
            }
    finally:
        # -- shutdown + gate 3: no leaked processes or shm segments ---------
        for nid in node_ids:
            address = _address_of(broker, nid)
            if address is not None:
                try:
                    call(address, "shutdown", timeout_s=5.0)
                except PeerUnavailableError:
                    pass  # the armed node is already dead
        deadline = time.monotonic() + 30.0
        for p in procs:
            p.join(timeout=max(0.1, deadline - time.monotonic()))
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        broker_server.stop()

    leaked_procs = {
        p.pid for p in mp.active_children() if p.pid not in children_before
    }
    if leaked_procs:
        raise SmokeFailure(f"leaked child processes: {leaked_procs}")
    # The queue's semaphores (sem.mp-*) are multiprocessing plumbing,
    # reclaimed at finalization -- release them before the segment gate so
    # only real shared-memory segments (slab psm_* names) can trip it.
    import gc

    ready.close()
    ready.join_thread()
    del ready
    gc.collect()
    leaked_shm: List[str] = []
    for _ in range(50):
        leaked_shm = sorted(
            e
            for e in set(_shm_entries()) - set(shm_before)
            if not e.startswith("sem.mp-")
        )
        if not leaked_shm:
            break
        time.sleep(0.1)
    if leaked_shm:
        raise SmokeFailure(f"leaked shared-memory segments: {leaked_shm}")

    report["ok"] = True
    report["leaks"] = {"processes": 0, "shm_segments": 0}
    say("round 3 ok: no leaked processes, /dev/shm clean")
    return report


def _node_stats(roster: Dict[str, Any], node_id: str) -> Dict[str, Any]:
    address = roster[node_id]["address"]
    return call(tuple(address), "stats")


def _address_of(broker: Broker, node_id: str) -> Optional[Tuple[str, int]]:
    with broker._lock:
        ref = broker._nodes.get(node_id)
    return ref.address if ref is not None else None
