"""ASCII table rendering for benchmark harness output.

Every figure-reproduction bench prints its rows/series through this module
so the output reads like the paper's plots rendered as text.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def format_seconds(value: float) -> str:
    """Render a duration with a unit that keeps 3-4 significant digits."""
    if value < 0:
        return "-" + format_seconds(-value)
    if value == 0:
        return "0 s"
    if value < 1e-6:
        return f"{value * 1e9:.1f} ns"
    if value < 1e-3:
        return f"{value * 1e6:.1f} us"
    if value < 1.0:
        return f"{value * 1e3:.2f} ms"
    if value < 120.0:
        return f"{value:.2f} s"
    if value < 7200.0:
        return f"{value / 60.0:.1f} min"
    return f"{value / 3600.0:.2f} h"


def format_bytes(value: float) -> str:
    """Render a byte count with a binary unit."""
    if value < 0:
        return "-" + format_bytes(-value)
    for unit, scale in (("TiB", 1024**4), ("GiB", 1024**3), ("MiB", 1024**2), ("KiB", 1024)):
        if value >= scale:
            return f"{value / scale:.2f} {unit}"
    return f"{value:.0f} B"


def _render_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


class Table:
    """A simple left/right-aligned ASCII table.

    >>> t = Table(["kernel", "speedup"], title="demo")
    >>> t.add_row(["scan_map", 12.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str = ""):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, row: Iterable[Cell]) -> None:
        cells = [_render_cell(c) for c in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            parts = []
            for i, cell in enumerate(cells):
                # First column left-aligned (labels), the rest right-aligned.
                if i == 0:
                    parts.append(cell.ljust(widths[i]))
                else:
                    parts.append(cell.rjust(widths[i]))
            return "  ".join(parts)

        sep = "  ".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(fmt_row(self.columns))
        lines.append(sep)
        lines.extend(fmt_row(r) for r in self.rows)
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()
