"""A small ``cloc``-style line counter (paper Figs 2-3 measure LoC).

The paper measured its three kernel code bases with ``cloc v1.82``, not
counting empty lines and comments.  This module applies the same rules to
Python sources: blank lines and comment-only lines are excluded, docstrings
are treated as comments (they document, they do not compute), and everything
else counts as code.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Union


@dataclass(frozen=True)
class LineCount:
    """Counts for one source file or an aggregate of files."""

    code: int = 0
    comment: int = 0
    blank: int = 0

    @property
    def total(self) -> int:
        return self.code + self.comment + self.blank

    def __add__(self, other: "LineCount") -> "LineCount":
        return LineCount(
            code=self.code + other.code,
            comment=self.comment + other.comment,
            blank=self.blank + other.blank,
        )


def count_source(text: str) -> LineCount:
    """Count code/comment/blank lines of Python source text.

    Docstrings (any string expression statement) and ``#`` comments count as
    comment lines; lines that contain both code and a trailing comment count
    as code.
    """
    lines = text.splitlines()
    n_lines = len(lines)
    comment_lines: set[int] = set()
    code_lines: set[int] = set()

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Fall back to a purely textual count on broken source.
        blank = sum(1 for ln in lines if not ln.strip())
        comment = sum(1 for ln in lines if ln.strip().startswith("#"))
        return LineCount(code=n_lines - blank - comment, comment=comment, blank=blank)

    prev_significant = None
    for tok in tokens:
        kind = tok.type
        start_line, end_line = tok.start[0], tok.end[0]
        if kind == tokenize.COMMENT:
            comment_lines.update(range(start_line, end_line + 1))
        elif kind == tokenize.STRING:
            # A string token is a docstring when it starts a logical line
            # (no significant token since the last NEWLINE).
            if prev_significant in (None, tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT):
                comment_lines.update(range(start_line, end_line + 1))
            else:
                code_lines.update(range(start_line, end_line + 1))
            prev_significant = kind
        elif kind in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            if kind in (tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT):
                prev_significant = kind
        else:
            code_lines.update(range(start_line, end_line + 1))
            prev_significant = kind

    code = 0
    comment = 0
    blank = 0
    for i, raw in enumerate(lines, start=1):
        if not raw.strip():
            blank += 1
        elif i in code_lines:
            code += 1
        elif i in comment_lines:
            comment += 1
        else:
            # Continuation lines of multi-line statements end up here when the
            # tokenizer attributed the whole token to its start line.
            code += 1
    # The two counting passes must agree on the number of lines.
    assert code + comment + blank == n_lines
    return LineCount(code=code, comment=comment, blank=blank)


def count_file(path: Union[str, Path]) -> LineCount:
    """Count one file on disk."""
    return count_source(Path(path).read_text())


def count_files(paths: Iterable[Union[str, Path]]) -> LineCount:
    """Aggregate counts over several files."""
    total = LineCount()
    for p in paths:
        total = total + count_file(p)
    return total


def count_tree(root: Union[str, Path], pattern: str = "*.py") -> Dict[str, LineCount]:
    """Count every file under ``root`` matching ``pattern``.

    Returns a mapping of path (relative to root) to :class:`LineCount`.
    """
    root = Path(root)
    out: Dict[str, LineCount] = {}
    for p in sorted(root.rglob(pattern)):
        if p.is_file():
            out[str(p.relative_to(root))] = count_file(p)
    return out
