"""Physical and unit constants used throughout the package."""

import math

# Byte units (binary).
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

# Angles.
PI = math.pi
TWOPI = 2.0 * math.pi
PIOVER2 = 0.5 * math.pi
DEG2RAD = math.pi / 180.0
RAD2DEG = 180.0 / math.pi
ARCMIN2RAD = DEG2RAD / 60.0
ARCSEC2RAD = ARCMIN2RAD / 60.0

# Time.
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
YEAR = 365.25 * DAY

# CMB monopole temperature in Kelvin, used by noise/sky models.
T_CMB = 2.72548
