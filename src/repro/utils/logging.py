"""Rank-aware logging, modelled on TOAST's environment-driven logger.

The logger is deliberately tiny: benchmarks and pipelines emit a handful of
progress lines, and tests need to silence them.  Levels follow the usual
DEBUG < INFO < WARNING < ERROR ordering and are settable globally or via the
``REPRO_LOGLEVEL`` environment variable.
"""

from __future__ import annotations

import os
import sys
import time
from typing import IO, Optional

_LEVELS = {"DEBUG": 10, "INFO": 20, "WARNING": 30, "ERROR": 40, "CRITICAL": 50}

_global_level: Optional[int] = None


def set_global_level(name: str) -> None:
    """Set the process-wide log level by name (e.g. ``"WARNING"``)."""
    global _global_level
    key = name.upper()
    if key not in _LEVELS:
        raise ValueError(f"unknown log level {name!r}; choose from {sorted(_LEVELS)}")
    _global_level = _LEVELS[key]


def _effective_level() -> int:
    if _global_level is not None:
        return _global_level
    env = os.environ.get("REPRO_LOGLEVEL", "WARNING").upper()
    return _LEVELS.get(env, _LEVELS["WARNING"])


class Logger:
    """A minimal logger that prefixes messages with a name and MPI-like rank.

    Parameters
    ----------
    name:
        Component name shown in the prefix.
    rank:
        Rank shown in the prefix; rank-nonzero loggers only emit at
        DEBUG level to keep multi-process output readable.
    stream:
        Output stream, defaults to stderr.
    """

    def __init__(self, name: str, rank: int = 0, stream: Optional[IO[str]] = None):
        self.name = name
        self.rank = rank
        self.stream = stream if stream is not None else sys.stderr
        self._t0 = time.perf_counter()

    def _emit(self, level: str, msg: str) -> None:
        if _LEVELS[level] < _effective_level():
            return
        if self.rank != 0 and _LEVELS[level] < _LEVELS["WARNING"]:
            return
        elapsed = time.perf_counter() - self._t0
        print(
            f"[{elapsed:9.3f}s] {level:<7} {self.name} (rank {self.rank}): {msg}",
            file=self.stream,
        )

    def debug(self, msg: str) -> None:
        self._emit("DEBUG", msg)

    def info(self, msg: str) -> None:
        self._emit("INFO", msg)

    def warning(self, msg: str) -> None:
        self._emit("WARNING", msg)

    def error(self, msg: str) -> None:
        self._emit("ERROR", msg)


_loggers: dict[tuple[str, int], Logger] = {}


def get_logger(name: str = "repro", rank: int = 0) -> Logger:
    """Return a cached :class:`Logger` for ``name`` and ``rank``."""
    key = (name, rank)
    if key not in _loggers:
        _loggers[key] = Logger(name, rank=rank)
    return _loggers[key]
