"""Shared utilities: logging, constants, ASCII tables, LoC counting."""

from .logging import Logger, get_logger
from .constants import (
    KB,
    MB,
    GB,
    TB,
    DEG2RAD,
    RAD2DEG,
    TWOPI,
    PIOVER2,
)
from .table import Table, format_seconds, format_bytes

__all__ = [
    "Logger",
    "get_logger",
    "KB",
    "MB",
    "GB",
    "TB",
    "DEG2RAD",
    "RAD2DEG",
    "TWOPI",
    "PIOVER2",
    "Table",
    "format_seconds",
    "format_bytes",
]
