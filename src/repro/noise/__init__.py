"""Detector noise models and FFT-based timestream synthesis.

The paper's satellite benchmark simulates "realistic noise" per detector.
TOAST models each detector with an analytic 1/f power spectral density and
synthesizes stationary noise by colouring counter-based Gaussian draws in
the Fourier domain; both pieces are reproduced here.
"""

from .psd import AnalyticNoiseModel, NoiseModel, white_noise_psd, oof_psd
from .sim import simulate_noise_timestream

__all__ = [
    "NoiseModel",
    "AnalyticNoiseModel",
    "white_noise_psd",
    "oof_psd",
    "simulate_noise_timestream",
]
