"""Stationary noise synthesis by Fourier-domain colouring.

Given a PSD on a frequency grid and a counter-based RNG key, synthesize a
real timestream whose periodogram follows the PSD.  This is the standard
TOAST ``sim_noise`` construction: draw white Gaussian Fourier coefficients
deterministically from Threefry, scale by ``sqrt(PSD * rate / 2)``, and
inverse-FFT.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import irfft

from ..rng import gaussian

__all__ = ["simulate_noise_timestream"]


def simulate_noise_timestream(
    n_samples: int,
    rate: float,
    freqs: np.ndarray,
    psd: np.ndarray,
    key: tuple[int, int],
    counter: tuple[int, int] = (0, 0),
    oversample: int = 2,
) -> np.ndarray:
    """Return ``n_samples`` of stationary noise matching ``psd``.

    Parameters
    ----------
    n_samples:
        Output length.
    rate:
        Sample rate in Hz.
    freqs, psd:
        PSD tabulated on ``freqs`` (Hz); interpolated onto the FFT grid.
    key, counter:
        Threefry stream identity; the output is a pure function of these.
    oversample:
        Synthesis length multiplier; generating a longer stream and keeping
        a slice suppresses the periodicity artifacts of circulant embedding.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if rate <= 0:
        raise ValueError("rate must be positive")
    freqs = np.asarray(freqs, dtype=np.float64)
    psd = np.asarray(psd, dtype=np.float64)
    if freqs.shape != psd.shape or freqs.ndim != 1:
        raise ValueError("freqs and psd must be matching 1-D arrays")
    if oversample < 1:
        raise ValueError("oversample must be >= 1")

    fft_len = 2
    while fft_len < oversample * n_samples:
        fft_len *= 2
    n_freq = fft_len // 2 + 1
    fft_freqs = np.fft.rfftfreq(fft_len, d=1.0 / rate)

    # Interpolate the PSD in log space where possible; clamp ends.
    interp_psd = np.interp(fft_freqs, freqs, psd)
    # The DC mode carries no stationary noise power.
    interp_psd[0] = 0.0

    # Gaussian real/imaginary parts for every positive frequency.  With
    # irfft's 1/N normalization, setting E|C_k|^2 = P_k * rate * N / 2 on the
    # interior bins makes Var(x) = sum_k P_k * (rate/N), the one-sided PSD
    # integral; each of re/im then needs variance P_k * rate * N / 4.
    draws = gaussian(2 * n_freq, key, counter)
    re = draws[0::2]
    im = draws[1::2]
    scale = np.sqrt(interp_psd * rate * fft_len / 4.0)
    coeff = scale * (re + 1j * im)
    coeff[0] = 0.0
    # The Nyquist coefficient of a real signal is real; sqrt(2) keeps its
    # share of the variance equal to an interior bin's.
    coeff[-1] = scale[-1] * re[-1] * np.sqrt(2.0)

    tod = irfft(coeff, n=fft_len)
    return np.asarray(tod[:n_samples], dtype=np.float64)
