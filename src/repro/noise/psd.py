"""Analytic noise power spectral densities (TOAST's ``AnalyticNoise``).

Each detector gets a PSD of the form::

    PSD(f) = NET^2 * (f^alpha + fknee^alpha) / (f^alpha + fmin^alpha)

which is white at high frequency (level ``NET^2``), rises as ``1/f^alpha``
below the knee, and flattens again below ``fmin`` so the integral stays
finite.  Units: NET in K*sqrt(s), frequencies in Hz, PSD in K^2/Hz.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

import numpy as np

__all__ = ["white_noise_psd", "oof_psd", "NoiseModel", "AnalyticNoiseModel"]


def white_noise_psd(freqs: np.ndarray, net: float) -> np.ndarray:
    """Flat PSD at level ``net**2``."""
    freqs = np.asarray(freqs, dtype=np.float64)
    return np.full(freqs.shape, float(net) ** 2, dtype=np.float64)


def oof_psd(
    freqs: np.ndarray,
    net: float,
    fknee: float,
    fmin: float,
    alpha: float,
) -> np.ndarray:
    """1/f PSD with knee ``fknee``, low-frequency cutoff ``fmin``, slope ``alpha``."""
    freqs = np.asarray(freqs, dtype=np.float64)
    if fknee < 0 or fmin <= 0:
        raise ValueError("fknee must be >= 0 and fmin > 0")
    if np.any(freqs < 0):
        raise ValueError("frequencies must be non-negative")
    # Evaluate safely at f=0: the fmin cutoff keeps the ratio finite there.
    fa = np.power(freqs, alpha, where=freqs > 0, out=np.zeros_like(freqs))
    ktmp = float(fknee) ** alpha
    mtmp = float(fmin) ** alpha
    return float(net) ** 2 * (fa + ktmp) / (fa + mtmp)


class NoiseModel:
    """Base class: per-detector PSDs on a common frequency grid."""

    def __init__(self, detectors: Iterable[str], freqs: np.ndarray, psds: Dict[str, np.ndarray]):
        self.detectors = list(detectors)
        self.freqs = np.asarray(freqs, dtype=np.float64)
        self._psds = {}
        for det in self.detectors:
            psd = np.asarray(psds[det], dtype=np.float64)
            if psd.shape != self.freqs.shape:
                raise ValueError(f"PSD for {det} does not match the frequency grid")
            if np.any(psd < 0):
                raise ValueError(f"PSD for {det} has negative values")
            self._psds[det] = psd

    def psd(self, detector: str) -> np.ndarray:
        """The PSD array for one detector."""
        return self._psds[detector]

    def detector_weight(self, detector: str) -> float:
        """Inverse white-noise variance weight (1 / (NET^2 * fsample)).

        Uses the high-frequency plateau of the PSD as the white-noise level,
        which is how TOAST's map-making weights detectors.
        """
        psd = self._psds[detector]
        # Average the top decade of frequencies to estimate the plateau.
        n = max(1, len(psd) // 10)
        plateau = float(np.mean(psd[-n:]))
        rate = 2.0 * float(self.freqs[-1])  # Nyquist grid -> sample rate
        if plateau <= 0:
            return 0.0
        return 1.0 / (plateau * rate)


@dataclass
class AnalyticNoiseModel(NoiseModel):
    """Build :class:`NoiseModel` PSDs from per-detector analytic parameters.

    Parameters mirror TOAST's ``AnalyticNoise``: sample rate plus
    per-detector NET, fknee, fmin, alpha.
    """

    rate: float = 10.0
    detector_names: tuple = ()
    net: Dict[str, float] = field(default_factory=dict)
    fknee: Dict[str, float] = field(default_factory=dict)
    fmin: Dict[str, float] = field(default_factory=dict)
    alpha: Dict[str, float] = field(default_factory=dict)
    n_freq: int = 1024

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("sample rate must be positive")
        if self.n_freq < 2:
            raise ValueError("n_freq must be at least 2")
        nyquist = 0.5 * self.rate
        freqs = np.linspace(0.0, nyquist, self.n_freq)
        psds = {}
        for det in self.detector_names:
            psds[det] = oof_psd(
                freqs,
                net=self.net.get(det, 1.0),
                fknee=self.fknee.get(det, 0.0),
                fmin=self.fmin.get(det, 1.0e-5),
                alpha=self.alpha.get(det, 1.0),
            )
        super().__init__(self.detector_names, freqs, psds)
