"""Per-direction asynchronous copy streams on the virtual clock.

A real A100 has independent DMA engines for each copy direction, so a
host-to-device copy for the *next* pipeline stage can run while the
current stage's kernels execute, and deferred device-to-host drains can
run behind compute.  :class:`CopyStream` models one such engine: copies
submitted to it occupy a per-stream timeline (the same coordinate system
as ``VirtualClock.now``), and the host only pays for the *exposed* part
of a copy -- the tail still in flight when something actually waits.

In this simulation the bytes themselves move at submission time (the
"DMA" is a memcpy between numpy arrays); the stream tracks *when* the
modeled hardware would have finished, which is all the cost accounting
needs.  The pipeline compiler's executor is careful to only submit
copies whose source bytes are final, which is exactly the discipline a
real async copy requires.
"""

from __future__ import annotations

from typing import List, Tuple

from .transfer import TransferModel

__all__ = ["CopyStream"]


class CopyStream:
    """One DMA engine: an ordered queue of modeled copies.

    ``clock`` provides the shared timeline; ``model`` the per-copy cost.
    ``wait_region`` names the clock region charged when the host blocks on
    the stream (so exposed transfer time is visible separately from the
    synchronous ``accel_data_update_*`` regions).
    """

    def __init__(self, clock, model: TransferModel, wait_region: str):
        self.clock = clock
        self.model = model
        self.wait_region = wait_region
        #: Device-timeline point up to which submitted copies keep this
        #: engine busy.
        self.busy_until = 0.0
        #: Total modeled seconds of copy work ever submitted.
        self.busy_seconds = 0.0
        #: Total seconds the host actually blocked in :meth:`wait`.
        self.waited_seconds = 0.0
        self.copies_submitted = 0
        #: (start, duration, nbytes) of copies not yet retired by a wait.
        self._inflight: List[Tuple[float, float, int]] = []

    def submit(
        self, nbytes: int, coalesced: bool = False, not_before: float = 0.0
    ) -> float:
        """Queue a copy of ``nbytes``; returns its completion timestamp.

        The host pays nothing here.  With ``coalesced=True`` the copy is
        treated as batched back-to-back with the previous queued copy and
        skips the per-copy link latency (the planner uses this when it
        drains several deferred D2H copies in one burst).  ``not_before``
        orders the copy after a device-timeline dependency (e.g. the async
        kernel that produces the bytes being read back).
        """
        start = max(self.clock.now, self.busy_until, not_before)
        duration = self.model.time(nbytes)
        if coalesced and self._inflight and self.busy_until > self.clock.now:
            duration = max(0.0, duration - self.model.latency_s)
        self.busy_until = start + duration
        self.busy_seconds += duration
        self.copies_submitted += 1
        self._inflight.append((start, duration, int(nbytes)))
        return self.busy_until

    def pending(self) -> float:
        """Seconds of copy work still in flight at the current clock time."""
        return max(0.0, self.busy_until - self.clock.now)

    @property
    def idle(self) -> bool:
        return self.busy_until <= self.clock.now

    def wait(self) -> float:
        """Block the host until every queued copy has finished.

        Charges only the *exposed* time to ``wait_region`` and returns it;
        copy time fully hidden behind compute costs nothing here.
        """
        exposed = self.pending()
        if exposed > 0:
            self.clock.charge(self.wait_region, exposed)
            self.waited_seconds += exposed
        self._inflight.clear()
        return exposed

    def reset(self) -> None:
        """Forget all queued work (device loss / test isolation)."""
        self.busy_until = self.clock.now
        self._inflight.clear()

    @property
    def overlap_seconds(self) -> float:
        """Copy time hidden behind compute so far (submitted minus exposed)."""
        return max(0.0, self.busy_seconds - self.waited_seconds)
