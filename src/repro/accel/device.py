"""The simulated accelerator device.

One :class:`SimulatedDevice` stands in for one NVIDIA A100: it owns a
memory pool sized like the real card, a virtual clock, a transfer model,
and launch accounting.  Both GPU programming-model shims
(:mod:`repro.jaxshim` and :mod:`repro.ompshim`) drive their data and
kernels through this object, so data movement and memory pressure are real
even though execution happens on the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..obs import state as obs_state
from ..obs.events import EventType
from ..resilience import state as res_state
from ..resilience.faults import FaultKind
from .buffer import DeviceBuffer
from .clock import VirtualClock
from .errors import DeviceLostError, InvalidFreeError
from .mps import GpuSharingModel
from .pool import MemoryPool
from .streams import CopyStream
from .transfer import TransferModel

__all__ = ["DeviceSpec", "SimulatedDevice"]

GiB = 1024**3


@dataclass(frozen=True)
class DeviceSpec:
    """Performance-relevant hardware constants (defaults: A100-40GB SXM)."""

    name: str = "A100-SXM4-40GB"
    memory_bytes: int = 40 * GiB
    peak_fp64_flops: float = 9.7e12
    memory_bandwidth_bps: float = 1555.0e9
    kernel_launch_overhead_s: float = 5.0e-6
    transfer: TransferModel = field(default_factory=TransferModel)

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError("device memory must be positive")
        if self.peak_fp64_flops <= 0 or self.memory_bandwidth_bps <= 0:
            raise ValueError("peak rates must be positive")
        if self.kernel_launch_overhead_s < 0:
            raise ValueError("launch overhead must be non-negative")


class SimulatedDevice:
    """A device: pool + clock + transfer accounting + launch accounting.

    Named clock regions follow the paper's Fig 6 conventions:
    ``accel_data_update_device``, ``accel_data_update_host``,
    ``accel_data_reset``, ``accel_data_delete`` for data operations, and the
    kernel name for launches.
    """

    def __init__(
        self,
        spec: Optional[DeviceSpec] = None,
        clock: Optional[VirtualClock] = None,
        device_id: int = 0,
        memory_bytes: Optional[int] = None,
    ):
        self.spec = spec if spec is not None else DeviceSpec()
        self.clock = clock if clock is not None else VirtualClock()
        self.device_id = device_id
        capacity = memory_bytes if memory_bytes is not None else self.spec.memory_bytes
        self.pool = MemoryPool(capacity)
        self.sharing = GpuSharingModel()
        self._buffers: Dict[int, DeviceBuffer] = {}
        self.kernels_launched = 0
        #: Device-timeline point (same coordinate as clock.now) up to which
        #: asynchronously submitted work keeps the device busy.
        self.busy_until = 0.0
        #: Set when an injected DEVICE_LOST fault destroyed the device;
        #: every device operation fails until :meth:`revive`.
        self.lost = False
        #: Independent DMA engines, one per copy direction (the pipeline
        #: compiler overlaps staged copies with compute through these).
        self.h2d_stream = CopyStream(self.clock, self.spec.transfer, "transfer_wait_h2d")
        self.d2h_stream = CopyStream(self.clock, self.spec.transfer, "transfer_wait_d2h")
        #: Active fused-launch accumulator (see :meth:`begin_fused`).
        self._fusion: Optional[dict] = None

    def _check_lost(self) -> None:
        if self.lost:
            raise DeviceLostError(
                f"device {self.device_id} is lost; revive() it (the pipeline's "
                "checkpoint/resume recovery does this) before further use"
            )

    def _poll_launch_faults(self, name: str) -> None:
        """Evaluate launch-site faults; may stall the clock or lose the device."""
        ctrl = res_state.active
        if ctrl is None:
            return
        try:
            spec = ctrl.check("device.launch", clock=self.clock, kernel=name)
        except DeviceLostError:
            self.lose()
            raise
        if spec is not None and spec.kind is FaultKind.DEVICE_STALL:
            self.clock.charge("fault_stall", spec.stall_seconds)

    def lose(self) -> None:
        """Destroy device state (injected device loss): data becomes garbage."""
        self.lost = True
        for buf in self._buffers.values():
            buf.scramble()

    def revive(self) -> None:
        """Bring a lost device back with a fresh, empty memory pool.

        Device-resident data is gone -- callers must rebuild it from host
        copies (the pipeline resumes from its last checkpoint manifest).
        The virtual clock keeps running: recovery time is real time.
        """
        for buf in self._buffers.values():
            buf.mark_freed()
        self._buffers.clear()
        self.pool = MemoryPool(self.pool.capacity, alignment=self.pool.alignment, policy=self.pool.policy)
        self.busy_until = self.clock.now
        self.h2d_stream.reset()
        self.d2h_stream.reset()
        self._fusion = None
        self.lost = False

    # -- memory --------------------------------------------------------------

    def alloc(self, nbytes: int, label: Optional[str] = None) -> DeviceBuffer:
        """Allocate a device buffer (``omp_target_alloc`` analogue).

        ``label`` names the owning kernel/field so pool diagnostics and
        eviction events can identify the buffer by what it holds.
        """
        self._check_lost()
        offset = self.pool.allocate(nbytes, label=label)
        buf = DeviceBuffer(
            offset, self.pool.size_of(offset), device_id=self.device_id, label=label
        )
        self._buffers[offset] = buf
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.ALLOC,
                "accel_alloc",
                ts=self.clock.now,
                nbytes=buf.nbytes,
                offset=offset,
                device=self.device_id,
                pool_allocated_bytes=self.pool.allocated_bytes,
                **({"label": label} if label is not None else {}),
            )
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        """Free a device buffer (``omp_target_free`` analogue)."""
        if buf.offset not in self._buffers or self._buffers[buf.offset] is not buf:
            raise InvalidFreeError(f"buffer at offset {buf.offset} is not live on this device")
        self.pool.free(buf.offset)
        del self._buffers[buf.offset]
        buf.mark_freed()
        self.clock.charge("accel_data_delete", 1.0e-6)
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.FREE,
                "accel_free",
                ts=self.clock.now,
                charged_s=1.0e-6,
                nbytes=buf.nbytes,
                offset=buf.offset,
                device=self.device_id,
                pool_allocated_bytes=self.pool.allocated_bytes,
            )

    @property
    def allocated_bytes(self) -> int:
        return self.pool.allocated_bytes

    @property
    def live_buffers(self) -> int:
        return len(self._buffers)

    # -- data movement ---------------------------------------------------------

    def update_device(self, buf: DeviceBuffer, host: np.ndarray) -> None:
        """Host -> device copy, charging modeled PCIe time.

        Copies on the default stream wait for outstanding async kernels.
        """
        self._check_lost()
        self.synchronize()
        t0 = self.clock.now
        ctrl = res_state.active
        if ctrl is not None:
            moved = ctrl.guarded_transfer("transfer.h2d", buf, host, clock=self.clock)
        else:
            moved = buf.write_from(host)
        seconds = self.spec.transfer.time(moved)
        self.clock.charge("accel_data_update_device", seconds)
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.H2D,
                "accel_data_update_device",
                ts=t0,
                dur=seconds,
                nbytes=moved,
                device=self.device_id,
                **self.spec.transfer.attrs(),
            )

    def update_host(self, buf: DeviceBuffer, host: np.ndarray) -> None:
        """Device -> host copy, charging modeled PCIe time (after a sync)."""
        self._check_lost()
        self.synchronize()
        t0 = self.clock.now
        ctrl = res_state.active
        if ctrl is not None:
            moved = ctrl.guarded_transfer("transfer.d2h", buf, host, clock=self.clock)
        else:
            moved = buf.read_into(host)
        seconds = self.spec.transfer.time(moved)
        self.clock.charge("accel_data_update_host", seconds)
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.D2H,
                "accel_data_update_host",
                ts=t0,
                dur=seconds,
                nbytes=moved,
                device=self.device_id,
                **self.spec.transfer.attrs(),
            )

    def update_device_async(
        self, buf: DeviceBuffer, host: np.ndarray, coalesced: bool = False
    ) -> None:
        """Host -> device copy on the H2D stream; the host pays nothing now.

        The bytes move immediately (the simulation's DMA is a memcpy) but
        the modeled copy occupies the stream timeline; only a later
        :meth:`wait_transfers` exposes whatever tail compute did not hide.
        Callers must not mutate ``host`` until the stream is drained --
        the same contract as ``cudaMemcpyAsync`` from pageable memory.
        """
        self._check_lost()
        ctrl = res_state.active
        if ctrl is not None:
            moved = ctrl.guarded_transfer("transfer.h2d", buf, host, clock=self.clock)
        else:
            moved = buf.write_from(host)
        seconds = self.spec.transfer.time(moved)
        start = max(self.clock.now, self.h2d_stream.busy_until)
        self.h2d_stream.submit(moved, coalesced=coalesced)
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.H2D,
                "accel_data_update_device",
                ts=start,
                dur=seconds,
                nbytes=moved,
                device=self.device_id,
                mode="async",
                **self.spec.transfer.attrs(),
            )

    def update_host_async(
        self, buf: DeviceBuffer, host: np.ndarray, coalesced: bool = False
    ) -> None:
        """Device -> host copy on the D2H stream (deferred drain).

        Ordered after outstanding async compute (``busy_until``): the copy
        reads bytes the device produced, so the modeled DMA cannot start
        before the producing kernel finishes.
        """
        self._check_lost()
        ctrl = res_state.active
        if ctrl is not None:
            moved = ctrl.guarded_transfer("transfer.d2h", buf, host, clock=self.clock)
        else:
            moved = buf.read_into(host)
        seconds = self.spec.transfer.time(moved)
        start = max(self.clock.now, self.d2h_stream.busy_until, self.busy_until)
        self.d2h_stream.submit(moved, coalesced=coalesced, not_before=self.busy_until)
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.D2H,
                "accel_data_update_host",
                ts=start,
                dur=seconds,
                nbytes=moved,
                device=self.device_id,
                mode="async",
                **self.spec.transfer.attrs(),
            )

    def wait_transfers(self, direction: str = "both") -> float:
        """Drain the copy streams; returns (and charges) the exposed seconds."""
        exposed = 0.0
        for stream in (
            [self.h2d_stream, self.d2h_stream]
            if direction == "both"
            else [self.h2d_stream if direction == "h2d" else self.d2h_stream]
        ):
            pending = stream.pending()
            if pending > 0:
                t0 = self.clock.now
                stream.wait()
                exposed += pending
                tr = obs_state.active
                if tr is not None:
                    tr.device_event(
                        EventType.SYNC,
                        stream.wait_region,
                        ts=t0,
                        dur=pending,
                        device=self.device_id,
                    )
            else:
                stream.wait()
        return exposed

    def reset(self, buf: DeviceBuffer) -> None:
        """Zero a device buffer on-device (a tiny memset kernel)."""
        buf.zero()
        t0 = self.clock.now
        memset_time = self.spec.kernel_launch_overhead_s + (
            buf.nbytes / self.spec.memory_bandwidth_bps
        )
        self.clock.charge("accel_data_reset", memset_time)
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.KERNEL_LAUNCH,
                "accel_data_reset",
                ts=t0,
                dur=memset_time,
                charged_s=memset_time,
                nbytes=buf.nbytes,
                device=self.device_id,
            )

    # -- kernels ---------------------------------------------------------------

    def launch(self, name: str, seconds: float, n_launches: int = 1) -> None:
        """Record a kernel execution of modeled duration ``seconds``.

        The GPU-sharing multiplier and per-launch overhead are applied here
        so callers only supply the isolated-kernel cost.
        """
        if seconds < 0:
            raise ValueError("kernel time must be non-negative")
        if n_launches < 1:
            raise ValueError("a launch records at least one kernel")
        self._check_lost()
        self._poll_launch_faults(name)
        if self._fusion is not None:
            self._accumulate_fused(name, seconds, n_launches)
            return
        total = (
            seconds * self.sharing.kernel_time_multiplier()
            + n_launches * self.spec.kernel_launch_overhead_s
        )
        # A synchronous launch also waits for prior async work.
        self.synchronize()
        t0 = self.clock.now
        self.clock.charge(name, total)
        self.busy_until = self.clock.now
        self.kernels_launched += n_launches
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.KERNEL_LAUNCH,
                name,
                ts=t0,
                dur=total,
                charged_s=total,
                n_launches=n_launches,
                device=self.device_id,
                mode="sync",
            )

    def launch_async(self, name: str, seconds: float, n_launches: int = 1) -> None:
        """Submit a kernel without waiting (``nowait`` / stream semantics).

        The host pays only the submission overhead; the kernel occupies the
        device timeline starting when the device is free.  This is the
        overlap the paper says OpenMP Target Offload needs "manual
        specification of data dependencies" to achieve (§2.2.2); results
        must not be read back before :meth:`synchronize`.
        """
        if seconds < 0:
            raise ValueError("kernel time must be non-negative")
        if n_launches < 1:
            raise ValueError("a launch records at least one kernel")
        self._check_lost()
        self._poll_launch_faults(name)
        if self._fusion is not None:
            self._accumulate_fused(name, seconds, n_launches)
            return
        submit = n_launches * self.spec.kernel_launch_overhead_s
        self.clock.charge(name, submit)
        duration = seconds * self.sharing.kernel_time_multiplier()
        start = max(self.clock.now, self.busy_until)
        self.busy_until = start + duration
        self.kernels_launched += n_launches
        tr = obs_state.active
        if tr is not None:
            # The event spans the device-timeline occupancy; only the
            # submission overhead was charged to the kernel's clock region.
            tr.device_event(
                EventType.KERNEL_LAUNCH,
                name,
                ts=start,
                dur=duration,
                charged_s=submit,
                n_launches=n_launches,
                device=self.device_id,
                mode="async",
            )

    # -- fused launch regions ---------------------------------------------------

    def begin_fused(self, name: str) -> None:
        """Open a fused-launch region (the pipeline compiler's fusion pass).

        Until :meth:`end_fused`, member :meth:`launch` calls accumulate
        their modeled kernel time instead of charging it; the region then
        charges one merged launch with a single launch overhead.  Fault
        polling still happens per member, so injected fault plans fire at
        the same ``device.launch`` evaluation as in unfused execution.
        """
        if self._fusion is not None:
            raise RuntimeError("fused launch regions do not nest")
        self._fusion = {
            "name": name,
            "seconds": 0.0,
            "members": [],
            "member_launches": 0,
        }

    def _accumulate_fused(self, name: str, seconds: float, n_launches: int) -> None:
        self._fusion["seconds"] += seconds * self.sharing.kernel_time_multiplier()
        self._fusion["members"].append(name)
        self._fusion["member_launches"] += n_launches

    def abort_fused(self) -> None:
        """Discard an open fused region (device lost mid-group)."""
        self._fusion = None

    def end_fused(self) -> int:
        """Close the region: one merged launch charge; returns launches elided."""
        if self._fusion is None:
            raise RuntimeError("no fused launch region is open")
        fusion, self._fusion = self._fusion, None
        if not fusion["members"]:
            return 0
        self._check_lost()
        total = fusion["seconds"] + self.spec.kernel_launch_overhead_s
        self.synchronize()
        t0 = self.clock.now
        name = f"fused.{fusion['name']}"
        self.clock.charge(name, total)
        self.busy_until = self.clock.now
        self.kernels_launched += 1
        elided = fusion["member_launches"] - 1
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.KERNEL_LAUNCH,
                name,
                ts=t0,
                dur=total,
                charged_s=total,
                n_launches=1,
                device=self.device_id,
                mode="fused",
                members=list(fusion["members"]),
                launches_elided=elided,
            )
        return elided

    def synchronize(self) -> None:
        """Block the host until outstanding async kernels finish."""
        wait = self.busy_until - self.clock.now
        if wait > 0:
            t0 = self.clock.now
            self.clock.charge("device_synchronize", wait)
            tr = obs_state.active
            if tr is not None:
                tr.device_event(
                    EventType.SYNC,
                    "device_synchronize",
                    ts=t0,
                    dur=wait,
                    device=self.device_id,
                )
        self.busy_until = self.clock.now

    # -- lifecycle ---------------------------------------------------------------

    def reset_all(self) -> None:
        """Free every live buffer and zero the accounting (test isolation)."""
        for buf in list(self._buffers.values()):
            self.free(buf)
        self.clock.reset()
        self.kernels_launched = 0
        self.busy_until = 0.0
        self.h2d_stream = CopyStream(self.clock, self.spec.transfer, "transfer_wait_h2d")
        self.d2h_stream = CopyStream(self.clock, self.spec.transfer, "transfer_wait_d2h")
        self._fusion = None
        self.lost = False

    def __repr__(self) -> str:
        return (
            f"SimulatedDevice({self.spec.name}, id={self.device_id}, "
            f"{self.allocated_bytes}/{self.pool.capacity} bytes, "
            f"{self.live_buffers} buffers)"
        )
