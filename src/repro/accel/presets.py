"""Device-spec presets for the cross-target study.

Paper §5: "in the longer term, it would be interesting to do a systematic
study quantifying the performance on various targets".  These presets give
the roofline model the published FP64 peaks, memory bandwidths, and
capacities of the accelerators TOAST-era HPC systems shipped with.
"""

from __future__ import annotations

from typing import Dict

from .device import DeviceSpec
from .transfer import TransferModel

__all__ = ["DEVICE_PRESETS"]

GiB = 1024**3

#: Published vendor specs: (FP64 peak flop/s without tensor/matrix units,
#: HBM bandwidth B/s, capacity, host link bandwidth).
DEVICE_PRESETS: Dict[str, DeviceSpec] = {
    # Perlmutter's GPU (the paper's target).
    "A100-40GB": DeviceSpec(
        name="A100-SXM4-40GB",
        memory_bytes=40 * GiB,
        peak_fp64_flops=9.7e12,
        memory_bandwidth_bps=1555.0e9,
        transfer=TransferModel(latency_s=10e-6, bandwidth_bps=25.0e9),
    ),
    "A100-80GB": DeviceSpec(
        name="A100-SXM4-80GB",
        memory_bytes=80 * GiB,
        peak_fp64_flops=9.7e12,
        memory_bandwidth_bps=2039.0e9,
        transfer=TransferModel(latency_s=10e-6, bandwidth_bps=25.0e9),
    ),
    # The previous NERSC generation (Cori-GPU / Summit era).
    "V100-16GB": DeviceSpec(
        name="V100-SXM2-16GB",
        memory_bytes=16 * GiB,
        peak_fp64_flops=7.8e12,
        memory_bandwidth_bps=900.0e9,
        transfer=TransferModel(latency_s=10e-6, bandwidth_bps=12.0e9),
    ),
    # The next NVIDIA generation.
    "H100-80GB": DeviceSpec(
        name="H100-SXM5-80GB",
        memory_bytes=80 * GiB,
        peak_fp64_flops=34.0e12,
        memory_bandwidth_bps=3350.0e9,
        transfer=TransferModel(latency_s=8e-6, bandwidth_bps=50.0e9),
    ),
    # AMD (Frontier): one GCD of an MI250X.
    "MI250X-GCD": DeviceSpec(
        name="MI250X (one GCD)",
        memory_bytes=64 * GiB,
        peak_fp64_flops=23.9e12,
        memory_bandwidth_bps=1638.0e9,
        transfer=TransferModel(latency_s=10e-6, bandwidth_bps=36.0e9),
    ),
}
