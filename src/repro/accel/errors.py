"""Exception types for the simulated accelerator."""


class AccelError(RuntimeError):
    """Base class for accelerator errors."""


class OutOfDeviceMemoryError(AccelError):
    """Raised when an allocation does not fit in device memory.

    The paper hits exactly this: the medium problem does not fit in the
    A100's 40 GB with JAX at 1 and 64 processes per node (Fig 4).
    """


class InvalidFreeError(AccelError):
    """Raised on freeing an address that is not allocated."""


class TransferError(AccelError):
    """Raised on malformed host<->device copies (size/dtype mismatch)."""
