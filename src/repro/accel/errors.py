"""Exception types for the simulated accelerator."""


class AccelError(RuntimeError):
    """Base class for accelerator errors."""


class OutOfDeviceMemoryError(AccelError):
    """Raised when an allocation does not fit in device memory.

    The paper hits exactly this: the medium problem does not fit in the
    A100's 40 GB with JAX at 1 and 64 processes per node (Fig 4).
    """


class InvalidFreeError(AccelError):
    """Raised on freeing an address that is not allocated."""


class TransferError(AccelError):
    """Raised on malformed host<->device copies (size/dtype mismatch)."""


class TransferCorruptionError(TransferError):
    """A transfer's checksum did not match: the copy was corrupted in flight.

    Transient by classification -- re-issuing the copy rewrites the
    corrupted bytes, so the retry plane handles it.
    """


class KernelLaunchError(AccelError):
    """A kernel launch failed transiently (driver/queue hiccup).

    Models the transient launch failures that multi-process device sharing
    makes a fact of life at Perlmutter scale; classified transient, so the
    recovery plane retries before falling back to another implementation.
    """


class DeviceLostError(AccelError):
    """The device was lost: all device-resident data is gone.

    Permanent for the current device incarnation -- recovery requires
    reviving the device and rebuilding its state from host-side
    checkpoints (see ``repro.resilience`` and the pipeline's
    checkpoint/resume path).
    """
