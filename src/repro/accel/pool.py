"""First-fit device memory pool with free-list coalescing.

The paper (§3.1.2): "All data movement was handled manually using a C++
singleton class managing device memory buffers allocated with
``omp_target_alloc()``, which uses a manually implemented memory pool."
This is that pool.  Offsets play the role of device pointers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs import state as obs_state
from ..resilience import state as res_state
from .errors import InvalidFreeError, OutOfDeviceMemoryError

__all__ = ["MemoryPool", "PoolStats"]

#: Device allocations are aligned as cudaMalloc aligns them.
DEFAULT_ALIGNMENT = 256


@dataclass
class PoolStats:
    """Aggregate pool statistics."""

    capacity: int
    allocated: int
    high_water: int
    n_allocs: int
    n_frees: int
    n_blocks_free: int

    @property
    def free(self) -> int:
        return self.capacity - self.allocated


@dataclass
class _FreeBlock:
    offset: int
    size: int


class MemoryPool:
    """A free-list allocator over a contiguous device arena.

    Allocation returns an integer offset (the "device pointer").  Freeing
    coalesces with adjacent free blocks.  The pool never moves live
    allocations (device pointers must stay stable, as real GPU pointers do).

    ``policy`` selects the free-block search: ``"first_fit"`` (fast, the
    default, what the paper's hand-written pool used) or ``"best_fit"``
    (scans for the tightest block; trades search time for fragmentation).
    """

    POLICIES = ("first_fit", "best_fit")

    def __init__(
        self,
        capacity: int,
        alignment: int = DEFAULT_ALIGNMENT,
        policy: str = "first_fit",
    ):
        if capacity <= 0:
            raise ValueError("pool capacity must be positive")
        if alignment <= 0 or (alignment & (alignment - 1)):
            raise ValueError("alignment must be a positive power of two")
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}, got {policy!r}")
        self.capacity = int(capacity)
        self.alignment = int(alignment)
        self.policy = policy
        self._free: List[_FreeBlock] = [_FreeBlock(0, self.capacity)]
        self._live: Dict[int, int] = {}  # offset -> size
        self._labels: Dict[int, str] = {}  # offset -> owning kernel/field name
        self._allocated = 0
        self._high_water = 0
        self._n_allocs = 0
        self._n_frees = 0

    def _round_up(self, nbytes: int) -> int:
        a = self.alignment
        return (nbytes + a - 1) & ~(a - 1)

    def _find_block(self, size: int) -> int:
        """Index of the free block to split, per the configured policy."""
        if self.policy == "first_fit":
            for i, block in enumerate(self._free):
                if block.size >= size:
                    return i
            return -1
        best = -1
        best_size = None
        for i, block in enumerate(self._free):
            if block.size >= size and (best_size is None or block.size < best_size):
                best, best_size = i, block.size
                if block.size == size:
                    break  # exact fit cannot be beaten
        return best

    def allocate(self, nbytes: int, label: Optional[str] = None) -> int:
        """Allocate ``nbytes`` (rounded up to the alignment); returns offset.

        ``label`` names the owning kernel/field (e.g. ``"ob0.detdata.pixels"``)
        so eviction and trace events can say *what* lived at an offset, not
        just the pointer.
        """
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        ctrl = res_state.active
        if ctrl is not None:
            # May raise an injected OutOfDeviceMemoryError (external or
            # fragmentation pressure per the active fault plan).
            ctrl.check("pool.allocate", nbytes=nbytes)
        size = self._round_up(nbytes)
        i = self._find_block(size)
        if i >= 0:
            block = self._free[i]
            offset = block.offset
            if block.size == size:
                del self._free[i]
            else:
                block.offset += size
                block.size -= size
            self._live[offset] = size
            if label is not None:
                self._labels[offset] = str(label)
            self._allocated += size
            self._high_water = max(self._high_water, self._allocated)
            self._n_allocs += 1
            tr = obs_state.active
            if tr is not None:
                tr.metrics.count("pool.alloc_bytes", size)
                tr.metrics.gauge_set("pool.fragmentation_blocks", len(self._free))
                tr.metrics.gauge_set("pool.peak_bytes", self._high_water)
            return offset
        raise OutOfDeviceMemoryError(
            f"cannot allocate {nbytes} bytes: {self.capacity - self._allocated} "
            f"free of {self.capacity} (fragmented into {len(self._free)} blocks)"
        )

    def _invalid_free_message(self, offset: int) -> str:
        """Diagnose a bad free: where the offset sits relative to live blocks."""
        stats = self.stats()
        context = (
            f"pool: {stats.allocated}/{stats.capacity} bytes allocated, "
            f"{stats.free} free in {stats.n_blocks_free} blocks, "
            f"{stats.n_allocs} allocs / {stats.n_frees} frees so far"
        )
        containing = None
        nearest = None
        for start in sorted(self._live):
            size = self._live[start]
            if start < offset < start + size:
                containing = (start, size)
                break
            if nearest is None or abs(start - offset) < abs(nearest[0] - offset):
                nearest = (start, size)
        if containing is not None:
            start, size = containing
            return (
                f"offset {offset} is inside the live block [{start}, {start + size})"
                f" ({size} bytes), not at its start; free() takes the offset "
                f"returned by allocate() ({start} for this block). {context}"
            )
        if nearest is not None:
            start, size = nearest
            return (
                f"offset {offset} is not an allocated block; nearest live block "
                f"is [{start}, {start + size}) ({size} bytes). Possible "
                f"double-free or stale device pointer. {context}"
            )
        return (
            f"offset {offset} is not an allocated block; the pool has no live "
            f"allocations (double-free after a reset?). {context}"
        )

    def free(self, offset: int) -> None:
        """Release an allocation, coalescing with free neighbours."""
        if offset not in self._live:
            raise InvalidFreeError(self._invalid_free_message(offset))
        size = self._live.pop(offset)
        self._labels.pop(offset, None)
        self._allocated -= size
        self._n_frees += 1
        tr = obs_state.active
        if tr is not None:
            tr.metrics.count("pool.free_bytes", size)

        # Insert sorted by offset, then coalesce around the insertion point.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].offset < offset:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, _FreeBlock(offset, size))
        # Coalesce with the next block.
        if lo + 1 < len(self._free):
            nxt = self._free[lo + 1]
            if self._free[lo].offset + self._free[lo].size == nxt.offset:
                self._free[lo].size += nxt.size
                del self._free[lo + 1]
        # Coalesce with the previous block.
        if lo > 0:
            prv = self._free[lo - 1]
            if prv.offset + prv.size == self._free[lo].offset:
                prv.size += self._free[lo].size
                del self._free[lo]

    def size_of(self, offset: int) -> int:
        """Size (after alignment rounding) of a live allocation."""
        try:
            return self._live[offset]
        except KeyError:
            raise InvalidFreeError(self._invalid_free_message(offset)) from None

    def is_live(self, offset: int) -> bool:
        return offset in self._live

    def label_of(self, offset: int) -> Optional[str]:
        """The owning kernel/field name recorded at allocation, if any."""
        return self._labels.get(offset)

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    @property
    def high_water_bytes(self) -> int:
        return self._high_water

    def stats(self) -> PoolStats:
        return PoolStats(
            capacity=self.capacity,
            allocated=self._allocated,
            high_water=self._high_water,
            n_allocs=self._n_allocs,
            n_frees=self._n_frees,
            n_blocks_free=len(self._free),
        )

    def verify(self) -> None:
        """Check structural invariants (used by property tests).

        Raises ``AssertionError`` if free blocks overlap, are unsorted,
        un-coalesced, or if live+free bytes do not tile the arena.
        """
        prev_end = None
        free_bytes = 0
        for block in self._free:
            assert block.size > 0, "empty free block"
            if prev_end is not None:
                assert block.offset > prev_end, "free blocks unsorted/overlapping/uncoalesced"
            prev_end = block.offset + block.size
            assert prev_end <= self.capacity, "free block beyond arena"
            free_bytes += block.size
        live = sorted(self._live.items())
        for (o1, s1), (o2, _) in zip(live, live[1:]):
            assert o1 + s1 <= o2, "live allocations overlap"
        assert free_bytes + self._allocated == self.capacity, "bytes do not tile the arena"
