"""GPU sharing model: NVIDIA MPS vs plain CUDA context switching.

The paper (§3.1.2): the OpenMP Target Offload port *needs* MPS to let
several processes submit kernels concurrently; without it "the CUDA driver
context-switches between processes, effectively capping our performance to
one process per device".  JAX did not need MPS because its runtime funnels
work differently.  This model captures both regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSharingModel"]


@dataclass(frozen=True)
class GpuSharingModel:
    """Multiplier on per-process kernel time when sharing one GPU.

    Parameters
    ----------
    procs_per_gpu:
        How many processes submit work to the same device.
    mps_enabled:
        Whether NVIDIA MPS (or an equivalent concurrent-submission path,
        as JAX has natively) is active.
    contention:
        Fractional slowdown per extra concurrent process under MPS, from
        shared memory bandwidth and SM occupancy (small by design: the
        paper observed a net *benefit* to 2x oversubscription).
    """

    procs_per_gpu: float = 1.0
    mps_enabled: bool = True
    contention: float = 0.05

    def __post_init__(self) -> None:
        if self.procs_per_gpu <= 0:
            raise ValueError("procs_per_gpu must be positive")
        if not 0 <= self.contention < 1:
            raise ValueError("contention must be in [0, 1)")

    def kernel_time_multiplier(self) -> float:
        """Factor applied to one process's device kernel time.

        Without MPS, context switching serializes submissions: each process
        effectively waits for the others, so device time scales with the
        number of sharers.  With MPS, kernels overlap and only a mild
        contention term remains.
        """
        sharers = max(1.0, self.procs_per_gpu)
        if not self.mps_enabled:
            return sharers
        return 1.0 + self.contention * (sharers - 1.0)
