"""Simulated accelerator substrate.

The paper's GPU work runs on NVIDIA A100s; this environment has none, so
the accelerator is simulated: device "memory" is real host storage managed
by a first-fit :class:`~repro.accel.pool.MemoryPool` (the paper's team wrote
exactly such a pool for their OpenMP Target Offload port), transfers really
copy bytes while charging modeled PCIe time to a
:class:`~repro.accel.clock.VirtualClock`, and kernel launches charge
modeled execution time supplied by :mod:`repro.perfmodel`.

Every code path the paper discusses is therefore live: allocation pressure,
host<->device association, transfer batching, MPS-style device sharing, and
out-of-memory failures at extreme process counts.
"""

from .clock import VirtualClock
from .errors import AccelError, InvalidFreeError, OutOfDeviceMemoryError, TransferError
from .pool import MemoryPool
from .buffer import DeviceBuffer
from .transfer import TransferModel
from .streams import CopyStream
from .device import DeviceSpec, SimulatedDevice
from .mps import GpuSharingModel
from .presets import DEVICE_PRESETS

__all__ = [
    "AccelError",
    "OutOfDeviceMemoryError",
    "InvalidFreeError",
    "TransferError",
    "VirtualClock",
    "MemoryPool",
    "DeviceBuffer",
    "TransferModel",
    "CopyStream",
    "DeviceSpec",
    "SimulatedDevice",
    "GpuSharingModel",
    "DEVICE_PRESETS",
]
