"""A virtual clock accumulating modeled time, with named regions.

Reported benchmark numbers in this reproduction are *modeled* seconds on
this clock (the real numerics execute on scaled problems).  Named regions
provide the per-operation accounting used by Fig 6 (kernels plus the
``accel_data_*`` data-movement entries).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["VirtualClock"]


class VirtualClock:
    """Accumulates modeled seconds globally and per named region."""

    def __init__(self) -> None:
        self._now = 0.0
        self._regions: Dict[str, float] = defaultdict(float)
        self._counts: Dict[str, int] = defaultdict(int)
        self._stack: list[str] = []

    @property
    def now(self) -> float:
        """Total modeled seconds elapsed."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Advance the clock; attributes the time to the active region."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        if self._stack:
            self._regions[self._stack[-1]] += seconds

    def advance_to(self, timestamp: float, region: str) -> float:
        """Advance to an absolute timestamp, charging ``region``.

        No-op (returns 0) if the clock is already past ``timestamp``; used
        by stream waits, where the host only pays for the exposed tail of
        asynchronously submitted work.  Returns the seconds charged.
        """
        wait = timestamp - self._now
        if wait <= 0:
            return 0.0
        self.charge(region, wait)
        return wait

    def charge(self, region: str, seconds: float) -> None:
        """Advance the clock attributing the time directly to ``region``."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self._now += seconds
        self._regions[region] += seconds
        self._counts[region] += 1

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Attribute :meth:`advance` calls inside the block to ``name``."""
        self._stack.append(name)
        self._counts[name] += 1
        try:
            yield
        finally:
            self._stack.pop()

    def region_time(self, name: str) -> float:
        return self._regions.get(name, 0.0)

    def region_count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def regions(self) -> Dict[str, float]:
        """Copy of the per-region totals."""
        return dict(self._regions)

    def reset(self) -> None:
        self._now = 0.0
        self._regions.clear()
        self._counts.clear()
        self._stack.clear()
