"""Host<->device transfer cost model.

A transfer costs a fixed launch/driver latency plus bytes over the link
bandwidth.  Defaults model one direction of the PCIe 4.0 x16 link that
connects a Perlmutter A100 to its host (about 25 GB/s sustained).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["TransferModel", "transfer_checksum"]


def transfer_checksum(data: np.ndarray, nbytes: int = -1) -> int:
    """CRC32 over the first ``nbytes`` of an array's storage.

    The resilience plane checksums both ends of a copy to detect
    corruption in flight (the real-world failure the paper's scale makes
    plausible: ECC catches most, but staged copies through pinned host
    buffers have been observed to go wrong under memory pressure).
    """
    flat = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    if nbytes >= 0:
        flat = flat[:nbytes]
    return zlib.crc32(flat.tobytes())


@dataclass(frozen=True)
class TransferModel:
    """Latency + bandwidth cost model for one copy direction."""

    latency_s: float = 10.0e-6
    bandwidth_bps: float = 25.0e9

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")

    def time(self, nbytes: int) -> float:
        """Modeled seconds to move ``nbytes``."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return self.latency_s + nbytes / self.bandwidth_bps

    def batched_time(self, sizes: list[int]) -> float:
        """Seconds to move several buffers as separate copies."""
        return sum(self.time(s) for s in sizes)

    def coalesced_time(self, sizes: list[int]) -> float:
        """Seconds to move several buffers as one back-to-back burst.

        One link latency for the whole burst (the DMA engine chains the
        descriptors), then pure bandwidth.  This is the cost the pipeline
        compiler's deferred-D2H drain pays.
        """
        if not sizes:
            return 0.0
        return self.latency_s + sum(max(0, s) for s in sizes) / self.bandwidth_bps

    def attrs(self) -> dict:
        """Model constants as event attributes (for H2D/D2H trace events)."""
        return {
            "link_latency_s": self.latency_s,
            "link_bandwidth_bps": self.bandwidth_bps,
        }
