"""Device-side buffers: pool-backed storage with typed views."""

from __future__ import annotations

import numpy as np

from .errors import TransferError

__all__ = ["DeviceBuffer"]


class DeviceBuffer:
    """A block of simulated device memory.

    The storage is a real byte array (so kernels genuinely read and write
    it); ``offset`` is the stable "device pointer" inside the owning
    :class:`~repro.accel.pool.MemoryPool`.
    """

    def __init__(self, offset: int, nbytes: int, device_id: int = 0, label=None):
        if nbytes <= 0:
            raise ValueError("buffer size must be positive")
        self.offset = int(offset)
        self.nbytes = int(nbytes)
        self.device_id = int(device_id)
        #: Owning kernel/field name (e.g. ``"ob0.detdata.pixels"``) for
        #: eviction/trace events; ``None`` for anonymous allocations.
        self.label = label
        self._storage = np.zeros(self.nbytes, dtype=np.uint8)
        self._freed = False

    @property
    def freed(self) -> bool:
        return self._freed

    def mark_freed(self) -> None:
        self._freed = True

    def _check_live(self) -> None:
        if self._freed:
            raise TransferError(
                f"use-after-free of device buffer at offset {self.offset}"
            )

    def array(self, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
        """A typed view of the device storage (no copy).

        This is what a device kernel dereferencing the pointer sees.
        """
        self._check_live()
        dtype = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        needed = count * dtype.itemsize
        if needed > self.nbytes:
            raise TransferError(
                f"view of {needed} bytes exceeds buffer of {self.nbytes} bytes"
            )
        flat = self._storage[:needed].view(dtype)
        return flat.reshape(shape)

    def write_from(self, host: np.ndarray) -> int:
        """Copy a host array into the buffer; returns bytes moved."""
        self._check_live()
        host = np.ascontiguousarray(host)
        if host.nbytes > self.nbytes:
            raise TransferError(
                f"host array of {host.nbytes} bytes exceeds buffer of {self.nbytes}"
            )
        self._storage[: host.nbytes] = host.view(np.uint8).reshape(-1)
        return host.nbytes

    def read_into(self, host: np.ndarray) -> int:
        """Copy the buffer back into a host array; returns bytes moved."""
        self._check_live()
        if not host.flags["C_CONTIGUOUS"]:
            raise TransferError("device-to-host copy needs a contiguous host array")
        if host.nbytes > self.nbytes:
            raise TransferError(
                f"host array of {host.nbytes} bytes exceeds buffer of {self.nbytes}"
            )
        host.view(np.uint8).reshape(-1)[:] = self._storage[: host.nbytes]
        return host.nbytes

    def zero(self) -> None:
        """Reset the storage to zero bytes (``accel_data_reset``)."""
        self._check_live()
        self._storage[:] = 0

    def checksum(self, nbytes: int = -1) -> int:
        """CRC32 over the first ``nbytes`` of the device storage."""
        from .transfer import transfer_checksum

        self._check_live()
        return transfer_checksum(self._storage, nbytes)

    def corrupt_byte(self, index: int) -> None:
        """Flip one byte of device storage (fault injection only)."""
        self._check_live()
        self._storage[index % self.nbytes] ^= 0xFF

    def scramble(self) -> None:
        """Overwrite the storage with a garbage pattern (device loss)."""
        self._storage[:] = 0xAB
