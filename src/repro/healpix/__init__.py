"""HEALPix pixelization built from scratch (Gorski et al. 2005).

TOAST's ``pixels_healpix`` kernel translates detector pointing directions
into HEALPix pixel numbers.  The paper singles this kernel out: it is branch
heavy ("many branches, with dozens of variables declared per branch") and
benefits least from JAX (11x) while OpenMP Target Offload handles it well
(41x).  To study that kernel for real we need an actual HEALPix
implementation; this subpackage provides fully vectorized RING and NESTED
schemes, the bit-interleaving machinery, and the scheme conversions.

Public API
----------
``ang2pix(nside, theta, phi, nest=False)``
    Spherical angles to pixel indices.
``pix2ang(nside, pix, nest=False)``
    Pixel indices to pixel-center angles.
``vec2pix(nside, vec, nest=False)`` / ``pix2vec``
    Cartesian unit-vector variants.
``ring2nest`` / ``nest2ring``
    Scheme conversions.
``npix(nside)``, ``nside2order``, ``pixel_area``
    Geometry helpers.
"""

from .core import (
    MAX_ORDER,
    check_nside,
    npix,
    ncap,
    nring,
    nside2order,
    order2nside,
    pixel_area,
)
from .bits import spread_bits, compress_bits
from .ring import ang2pix_ring, pix2ang_ring
from .nest import ang2pix_nest, pix2ang_nest, nest2ring, ring2nest
from .vectors import ang2vec, vec2ang, ang2pix, pix2ang, vec2pix, pix2vec
from .query import query_disc, pixel_distances

__all__ = [
    "MAX_ORDER",
    "check_nside",
    "npix",
    "ncap",
    "nring",
    "nside2order",
    "order2nside",
    "pixel_area",
    "spread_bits",
    "compress_bits",
    "ang2pix_ring",
    "pix2ang_ring",
    "ang2pix_nest",
    "pix2ang_nest",
    "nest2ring",
    "ring2nest",
    "ang2vec",
    "vec2ang",
    "ang2pix",
    "pix2ang",
    "vec2pix",
    "pix2vec",
    "query_disc",
    "pixel_distances",
]
