"""HEALPix geometry: resolution parameters and pixel counts.

HEALPix divides the sphere into 12 base faces subdivided into
``nside x nside`` pixels each, all with equal area.  ``nside`` must be a
power of two for the NESTED scheme; this implementation requires that for
both schemes (as TOAST does).
"""

from __future__ import annotations

import math

import numpy as np

#: Largest supported resolution order (nside = 2**MAX_ORDER).  Pixel indices
#: stay well within int64 at this order.
MAX_ORDER = 26


def check_nside(nside: int) -> int:
    """Validate ``nside`` (a power of two in ``[1, 2**MAX_ORDER]``)."""
    nside = int(nside)
    if nside < 1 or nside > (1 << MAX_ORDER):
        raise ValueError(f"nside must be in [1, 2**{MAX_ORDER}], got {nside}")
    if nside & (nside - 1):
        raise ValueError(f"nside must be a power of two, got {nside}")
    return nside


def nside2order(nside: int) -> int:
    """Resolution order: ``nside = 2**order``."""
    nside = check_nside(nside)
    return nside.bit_length() - 1


def order2nside(order: int) -> int:
    """Inverse of :func:`nside2order`."""
    order = int(order)
    if order < 0 or order > MAX_ORDER:
        raise ValueError(f"order must be in [0, {MAX_ORDER}], got {order}")
    return 1 << order


def npix(nside: int) -> int:
    """Total number of pixels: ``12 * nside**2``."""
    nside = check_nside(nside)
    return 12 * nside * nside


def ncap(nside: int) -> int:
    """Number of pixels in each polar cap: ``2 * nside * (nside - 1)``."""
    nside = check_nside(nside)
    return 2 * nside * (nside - 1)


def nring(nside: int) -> int:
    """Number of iso-latitude rings: ``4 * nside - 1``."""
    nside = check_nside(nside)
    return 4 * nside - 1


def pixel_area(nside: int) -> float:
    """Solid angle of one pixel in steradians (all pixels are equal-area)."""
    return 4.0 * math.pi / npix(nside)


def isqrt(x: np.ndarray) -> np.ndarray:
    """Element-wise integer square root of non-negative int64 values.

    A float sqrt gives the right answer up to rounding at the scale of
    HEALPix pixel indices; one correction step in each direction repairs the
    boundary cases exactly.
    """
    x = np.asarray(x, dtype=np.int64)
    s = np.asarray(np.sqrt(x.astype(np.float64)), dtype=np.float64).astype(np.int64)
    # Repair float rounding: s must satisfy s*s <= x < (s+1)*(s+1).
    s = np.where((s + 1) * (s + 1) <= x, s + 1, s)
    s = np.where(s * s > x, s - 1, s)
    return s


# Face constants used by the NESTED<->ring mappings (Gorski et al. 2005).
#: Ring offset of each base face: face f touches ring jrll[f]*nside - ... .
JRLL = np.array([2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4], dtype=np.int64)
#: Longitude offset of each base face in units of pi/4.
JPLL = np.array([1, 3, 5, 7, 0, 2, 4, 6, 1, 3, 5, 7], dtype=np.int64)
