"""Bit interleaving for the HEALPix NESTED scheme.

NESTED pixel numbers are Morton (Z-order) codes of the in-face ``(x, y)``
coordinates.  The spread/compress operations below use the classic binary
magic-number sequence and are fully vectorized over uint64 arrays.
"""

from __future__ import annotations

import numpy as np

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_M8 = np.uint64(0x00FF00FF00FF00FF)
_M16 = np.uint64(0x0000FFFF0000FFFF)
_M32 = np.uint64(0x00000000FFFFFFFF)


def spread_bits(v: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of each value to the even bit positions.

    ``abcd -> 0a0b0c0d`` (bit-wise); the odd positions become zero.
    """
    x = np.asarray(v).astype(np.uint64) & _M32
    x = (x | (x << np.uint64(16))) & _M16
    x = (x | (x << np.uint64(8))) & _M8
    x = (x | (x << np.uint64(4))) & _M4
    x = (x | (x << np.uint64(2))) & _M2
    x = (x | (x << np.uint64(1))) & _M1
    return x


def compress_bits(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`spread_bits`: gather the even bit positions."""
    x = np.asarray(v).astype(np.uint64) & _M1
    x = (x | (x >> np.uint64(1))) & _M2
    x = (x | (x >> np.uint64(2))) & _M4
    x = (x | (x >> np.uint64(4))) & _M8
    x = (x | (x >> np.uint64(8))) & _M16
    x = (x | (x >> np.uint64(16))) & _M32
    return x


def xyf2nest(ix: np.ndarray, iy: np.ndarray, face: np.ndarray, order: int) -> np.ndarray:
    """Combine in-face coordinates and face number into a NESTED index."""
    ix = np.asarray(ix, dtype=np.int64)
    iy = np.asarray(iy, dtype=np.int64)
    face = np.asarray(face, dtype=np.int64)
    morton = spread_bits(ix) | (spread_bits(iy) << np.uint64(1))
    return (face << np.int64(2 * order)) + morton.astype(np.int64)


def nest2xyf(pix: np.ndarray, order: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a NESTED index into ``(ix, iy, face)``."""
    pix = np.asarray(pix, dtype=np.int64)
    npface = np.int64(1) << np.int64(2 * order)
    face = pix >> np.int64(2 * order)
    within = (pix & (npface - np.int64(1))).astype(np.uint64)
    ix = compress_bits(within).astype(np.int64)
    iy = compress_bits(within >> np.uint64(1)).astype(np.int64)
    return ix, iy, face
