"""RING-scheme pixelization: angle <-> pixel index.

Pixels are numbered along iso-latitude rings from north to south; the two
polar caps have rings of ``4*i`` pixels (ring index ``i``), the equatorial
belt rings of ``4*nside`` pixels.  All routines follow the reference
``healpix_base`` algorithms and are fully vectorized.
"""

from __future__ import annotations

import numpy as np

from .core import check_nside, isqrt, ncap, npix

_TWOTHIRD = 2.0 / 3.0
_HALFPI = 0.5 * np.pi
_INV_HALFPI = 2.0 / np.pi


def _zphi(theta: np.ndarray, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Normalize angles: return ``(z, tt)`` with ``tt = phi/(pi/2) in [0,4)``."""
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    if np.any(theta < 0.0) or np.any(theta > np.pi):
        raise ValueError("theta must lie in [0, pi]")
    z = np.cos(theta)
    tt = np.mod(phi * _INV_HALFPI, 4.0)
    # np.mod of a tiny negative value can round up to exactly 4.0; the
    # algorithms below require tt strictly inside [0, 4).
    tt = np.where(tt >= 4.0, 0.0, tt)
    return z, tt


def ang2pix_ring(nside: int, theta: np.ndarray, phi: np.ndarray) -> np.ndarray:
    """Map colatitude/longitude to RING pixel indices.

    Parameters
    ----------
    nside:
        Resolution (power of two).
    theta:
        Colatitude in radians, ``[0, pi]``.
    phi:
        Longitude in radians (any value; reduced mod 2*pi).
    """
    nside = check_nside(nside)
    z, tt = _zphi(theta, phi)
    z, tt = np.broadcast_arrays(z, tt)
    za = np.abs(z)
    ncap_ = ncap(nside)
    npix_ = npix(nside)
    pix = np.empty(z.shape, dtype=np.int64)

    # Equatorial belt: |z| <= 2/3.
    eq = za <= _TWOTHIRD
    if np.any(eq):
        zeq = z[eq]
        tteq = tt[eq]
        temp1 = nside * (0.5 + tteq)
        temp2 = nside * (zeq * 0.75)
        jp = (temp1 - temp2).astype(np.int64)  # ascending edge line index
        jm = (temp1 + temp2).astype(np.int64)  # descending edge line index
        ir = nside + 1 + jp - jm  # ring number counted from z = 2/3
        kshift = 1 - (ir & 1)  # 1 when ir is even
        ip = (jp + jm - nside + kshift + 1) >> 1
        ip = np.mod(ip, 4 * nside)
        pix[eq] = ncap_ + (ir - 1) * 4 * nside + ip

    # Polar caps.
    pol = ~eq
    if np.any(pol):
        zp = z[pol]
        ttp = tt[pol]
        zap = za[pol]
        tp = ttp - np.floor(ttp)
        tmp = nside * np.sqrt(3.0 * (1.0 - zap))
        jp = (tp * tmp).astype(np.int64)
        jm = ((1.0 - tp) * tmp).astype(np.int64)
        ir = jp + jm + 1  # ring number counted from the closest pole
        ip = (ttp * ir).astype(np.int64)
        ip = np.mod(ip, 4 * ir)
        north = zp > 0
        ppix = np.where(
            north,
            2 * ir * (ir - 1) + ip,
            npix_ - 2 * ir * (ir + 1) + ip,
        )
        pix[pol] = ppix

    return pix


def pix2ang_ring(nside: int, pix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map RING pixel indices to pixel-center ``(theta, phi)``."""
    nside = check_nside(nside)
    pix = np.asarray(pix, dtype=np.int64)
    npix_ = npix(nside)
    if np.any(pix < 0) or np.any(pix >= npix_):
        raise ValueError(f"pixel index out of range for nside={nside}")
    ncap_ = ncap(nside)
    fact2 = 4.0 / npix_
    fact1 = (nside << 1) * fact2

    z = np.empty(pix.shape, dtype=np.float64)
    phi = np.empty(pix.shape, dtype=np.float64)

    north = pix < ncap_
    if np.any(north):
        p = pix[north]
        iring = (1 + isqrt(1 + 2 * p)) >> 1
        iphi = (p + 1) - 2 * iring * (iring - 1)
        z[north] = 1.0 - (iring * iring) * fact2
        phi[north] = (iphi - 0.5) * _HALFPI / iring

    equat = (pix >= ncap_) & (pix < npix_ - ncap_)
    if np.any(equat):
        ip = pix[equat] - ncap_
        iring = ip // (4 * nside) + nside
        iphi = np.mod(ip, 4 * nside) + 1
        # Odd/even rings are shifted by half a pixel in phi.
        fodd = 0.5 * (1 + ((iring + nside) & 1))
        z[equat] = (2 * nside - iring) * fact1
        phi[equat] = (iphi - fodd) * _HALFPI / nside

    south = pix >= npix_ - ncap_
    if np.any(south):
        ip = npix_ - pix[south]
        iring = (1 + isqrt(2 * ip - 1)) >> 1
        iphi = 4 * iring + 1 - (ip - 2 * iring * (iring - 1))
        z[south] = -1.0 + (iring * iring) * fact2
        phi[south] = (iphi - 0.5) * _HALFPI / iring

    theta = np.arccos(np.clip(z, -1.0, 1.0))
    return theta, phi
