"""NESTED-scheme pixelization and RING <-> NESTED conversions.

The NESTED scheme numbers pixels by base face and then by Morton code of
the in-face coordinates, which keeps nearby pixels nearby in index space --
the property TOAST relies on for its sub-map distribution.
"""

from __future__ import annotations

import numpy as np

from .bits import nest2xyf, xyf2nest
from .core import JPLL, JRLL, check_nside, isqrt, ncap, npix, nside2order
from .ring import _zphi

_TWOTHIRD = 2.0 / 3.0
_HALFPI = 0.5 * np.pi


def _ang2xyf(nside: int, theta: np.ndarray, phi: np.ndarray):
    """Angles to in-face coordinates ``(ix, iy, face)``."""
    z, tt = _zphi(theta, phi)
    z, tt = np.broadcast_arrays(z, tt)
    za = np.abs(z)

    ix = np.empty(z.shape, dtype=np.int64)
    iy = np.empty(z.shape, dtype=np.int64)
    face = np.empty(z.shape, dtype=np.int64)

    order = nside2order(nside)

    eq = za <= _TWOTHIRD
    if np.any(eq):
        zeq = z[eq]
        tteq = tt[eq]
        temp1 = nside * (0.5 + tteq)
        temp2 = nside * (zeq * 0.75)
        jp = (temp1 - temp2).astype(np.int64)
        jm = (temp1 + temp2).astype(np.int64)
        ifp = jp >> order
        ifm = jm >> order
        f = np.where(
            ifp == ifm,
            (ifp & 3) + 4,
            np.where(ifp < ifm, ifp & 3, (ifm & 3) + 8),
        )
        face[eq] = f
        ix[eq] = jm & (nside - 1)
        iy[eq] = (nside - 1) - (jp & (nside - 1))

    pol = ~eq
    if np.any(pol):
        zp = z[pol]
        ttp = tt[pol]
        zap = za[pol]
        ntt = np.minimum(ttp.astype(np.int64), 3)
        tp = ttp - ntt
        tmp = nside * np.sqrt(3.0 * (1.0 - zap))
        jp = (tp * tmp).astype(np.int64)
        jm = ((1.0 - tp) * tmp).astype(np.int64)
        jp = np.minimum(jp, nside - 1)  # rounding guard at the cap edge
        jm = np.minimum(jm, nside - 1)
        north = zp >= 0
        face[pol] = np.where(north, ntt, ntt + 8)
        ix[pol] = np.where(north, nside - 1 - jm, jp)
        iy[pol] = np.where(north, nside - 1 - jp, jm)

    return ix, iy, face


def ang2pix_nest(nside: int, theta: np.ndarray, phi: np.ndarray) -> np.ndarray:
    """Map colatitude/longitude to NESTED pixel indices."""
    nside = check_nside(nside)
    order = nside2order(nside)
    ix, iy, face = _ang2xyf(nside, theta, phi)
    return xyf2nest(ix, iy, face, order)


def _xyf2ang(nside: int, ix: np.ndarray, iy: np.ndarray, face: np.ndarray):
    """In-face coordinates to pixel-center ``(theta, phi)``."""
    npix_ = npix(nside)
    fact2 = 4.0 / npix_
    fact1 = (nside << 1) * fact2

    jr = JRLL[face] * nside - ix - iy - 1  # global ring index, 1..4*nside-1

    z = np.empty(jr.shape, dtype=np.float64)
    nr = np.empty(jr.shape, dtype=np.int64)
    kshift = np.zeros(jr.shape, dtype=np.int64)

    north = jr < nside
    south = jr > 3 * nside
    belt = ~(north | south)

    nr[north] = jr[north]
    z[north] = 1.0 - (nr[north] * nr[north]) * fact2
    nr[south] = 4 * nside - jr[south]
    z[south] = (nr[south] * nr[south]) * fact2 - 1.0
    nr[belt] = nside
    z[belt] = (2 * nside - jr[belt]) * fact1
    kshift[belt] = (jr[belt] - nside) & 1

    jp = (JPLL[face] * nr + ix - iy + 1 + kshift) >> 1
    jp = np.where(jp > 4 * nr, jp - 4 * nr, jp)
    jp = np.where(jp < 1, jp + 4 * nr, jp)
    phi = (jp - (kshift + 1) * 0.5) * (_HALFPI / nr)
    theta = np.arccos(np.clip(z, -1.0, 1.0))
    return theta, phi


def pix2ang_nest(nside: int, pix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map NESTED pixel indices to pixel-center ``(theta, phi)``."""
    nside = check_nside(nside)
    pix = np.asarray(pix, dtype=np.int64)
    if np.any(pix < 0) or np.any(pix >= npix(nside)):
        raise ValueError(f"pixel index out of range for nside={nside}")
    order = nside2order(nside)
    ix, iy, face = nest2xyf(pix, order)
    return _xyf2ang(nside, ix, iy, face)


def _xyf2ring(nside: int, ix: np.ndarray, iy: np.ndarray, face: np.ndarray) -> np.ndarray:
    """In-face coordinates to RING index."""
    ncap_ = ncap(nside)
    npix_ = npix(nside)
    jr = JRLL[face] * nside - ix - iy - 1

    nr = np.empty(jr.shape, dtype=np.int64)
    kshift = np.zeros(jr.shape, dtype=np.int64)
    n_before = np.empty(jr.shape, dtype=np.int64)

    north = jr < nside
    south = jr > 3 * nside
    belt = ~(north | south)

    nr[north] = jr[north]
    n_before[north] = 2 * nr[north] * (nr[north] - 1)
    nr[south] = 4 * nside - jr[south]
    n_before[south] = npix_ - 2 * (nr[south] + 1) * nr[south]
    nr[belt] = nside
    n_before[belt] = ncap_ + (jr[belt] - nside) * 4 * nside
    kshift[belt] = (jr[belt] - nside) & 1

    jp = (JPLL[face] * nr + ix - iy + 1 + kshift) >> 1
    jp = np.where(jp > 4 * nr, jp - 4 * nr, jp)
    jp = np.where(jp < 1, jp + 4 * nr, jp)
    return n_before + jp - 1


def _ring2xyf(nside: int, pix: np.ndarray):
    """RING index to in-face coordinates ``(ix, iy, face)``."""
    ncap_ = ncap(nside)
    npix_ = npix(nside)
    order = nside2order(nside)

    iring = np.empty(pix.shape, dtype=np.int64)
    iphi = np.empty(pix.shape, dtype=np.int64)
    kshift = np.zeros(pix.shape, dtype=np.int64)
    nr = np.empty(pix.shape, dtype=np.int64)
    face = np.empty(pix.shape, dtype=np.int64)

    north = pix < ncap_
    if np.any(north):
        p = pix[north]
        ring = (1 + isqrt(1 + 2 * p)) >> 1
        phi_idx = (p + 1) - 2 * ring * (ring - 1)
        iring[north] = ring
        iphi[north] = phi_idx
        nr[north] = ring
        face[north] = (phi_idx - 1) // ring

    belt = (pix >= ncap_) & (pix < npix_ - ncap_)
    if np.any(belt):
        ip = pix[belt] - ncap_
        tmp = ip >> (order + 2)
        ring = tmp + nside
        phi_idx = ip - tmp * 4 * nside + 1
        iring[belt] = ring
        iphi[belt] = phi_idx
        kshift[belt] = (ring + nside) & 1
        nr[belt] = nside
        ire = ring - nside + 1
        irm = 2 * nside + 2 - ire
        ifm = (phi_idx - ire // 2 + nside - 1) >> order
        ifp = (phi_idx - irm // 2 + nside - 1) >> order
        face[belt] = np.where(
            ifp == ifm,
            ifp | 4,
            np.where(ifp < ifm, ifp, ifm + 8),
        )

    south = pix >= npix_ - ncap_
    if np.any(south):
        ip = npix_ - pix[south]
        ring = (1 + isqrt(2 * ip - 1)) >> 1
        phi_idx = 4 * ring + 1 - (ip - 2 * ring * (ring - 1))
        iphi[south] = phi_idx
        nr[south] = ring
        face[south] = 8 + (phi_idx - 1) // ring
        iring[south] = 4 * nside - ring  # global ring index from the north

    irt = iring - JRLL[face] * nside + 1
    ipt = 2 * iphi - JPLL[face] * nr - kshift - 1
    ipt = np.where(ipt >= 2 * nside, ipt - 8 * nside, ipt)
    ix = (ipt - irt) >> 1
    iy = (-ipt - irt) >> 1
    return ix, iy, face


def nest2ring(nside: int, pix: np.ndarray) -> np.ndarray:
    """Convert NESTED pixel indices to RING."""
    nside = check_nside(nside)
    pix = np.asarray(pix, dtype=np.int64)
    if np.any(pix < 0) or np.any(pix >= npix(nside)):
        raise ValueError(f"pixel index out of range for nside={nside}")
    order = nside2order(nside)
    ix, iy, face = nest2xyf(pix, order)
    return _xyf2ring(nside, ix, iy, face)


def ring2nest(nside: int, pix: np.ndarray) -> np.ndarray:
    """Convert RING pixel indices to NESTED."""
    nside = check_nside(nside)
    pix = np.asarray(pix, dtype=np.int64)
    if np.any(pix < 0) or np.any(pix >= npix(nside)):
        raise ValueError(f"pixel index out of range for nside={nside}")
    order = nside2order(nside)
    ix, iy, face = _ring2xyf(nside, pix)
    return xyf2nest(ix, iy, face, order)
