"""Cartesian-vector front end and the scheme-dispatching convenience API."""

from __future__ import annotations

import numpy as np

from .nest import ang2pix_nest, pix2ang_nest
from .ring import ang2pix_ring, pix2ang_ring


def ang2vec(theta: np.ndarray, phi: np.ndarray) -> np.ndarray:
    """Spherical angles to unit vectors, shape ``(..., 3)``."""
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    st = np.sin(theta)
    shape = np.broadcast(theta, phi).shape + (3,)
    out = np.empty(shape, dtype=np.float64)
    out[..., 0] = st * np.cos(phi)
    out[..., 1] = st * np.sin(phi)
    out[..., 2] = np.cos(theta)
    return out


def vec2ang(vec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unit vectors to ``(theta, phi)``; vectors need not be normalized."""
    vec = np.asarray(vec, dtype=np.float64)
    if vec.shape[-1] != 3:
        raise ValueError(f"vectors must have a trailing axis of 3, got {vec.shape}")
    norm = np.sqrt(np.sum(vec * vec, axis=-1))
    if np.any(norm == 0):
        raise ValueError("cannot convert a zero vector to angles")
    z = vec[..., 2] / norm
    theta = np.arccos(np.clip(z, -1.0, 1.0))
    phi = np.arctan2(vec[..., 1], vec[..., 0])
    return theta, phi


def ang2pix(nside: int, theta: np.ndarray, phi: np.ndarray, nest: bool = False) -> np.ndarray:
    """Angles to pixel indices in the requested scheme."""
    if nest:
        return ang2pix_nest(nside, theta, phi)
    return ang2pix_ring(nside, theta, phi)


def pix2ang(nside: int, pix: np.ndarray, nest: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Pixel indices to pixel-center angles in the requested scheme."""
    if nest:
        return pix2ang_nest(nside, pix)
    return pix2ang_ring(nside, pix)


def vec2pix(nside: int, vec: np.ndarray, nest: bool = False) -> np.ndarray:
    """Unit vectors to pixel indices."""
    theta, phi = vec2ang(vec)
    return ang2pix(nside, theta, phi, nest=nest)


def pix2vec(nside: int, pix: np.ndarray, nest: bool = False) -> np.ndarray:
    """Pixel indices to pixel-center unit vectors."""
    theta, phi = pix2ang(nside, pix, nest=nest)
    return ang2vec(theta, phi)
