"""Spatial queries on the pixelized sphere.

``query_disc`` selects the pixels whose centers fall within an angular
radius of a direction -- the standard tool for masking sources and
selecting sky patches when analysing the maps the benchmark produces.
"""

from __future__ import annotations

import numpy as np

from .core import check_nside, npix
from .vectors import ang2vec, pix2vec
from .nest import ring2nest

__all__ = ["query_disc", "pixel_distances"]


def pixel_distances(nside: int, vec: np.ndarray, nest: bool = False) -> np.ndarray:
    """Angular distance (radians) from ``vec`` to every pixel center."""
    nside = check_nside(nside)
    vec = np.asarray(vec, dtype=np.float64)
    if vec.shape != (3,):
        raise ValueError("vec must be a single 3-vector")
    norm = np.linalg.norm(vec)
    if norm == 0:
        raise ValueError("vec must be non-zero")
    vec = vec / norm
    centers = pix2vec(nside, np.arange(npix(nside)), nest=nest)
    return np.arccos(np.clip(centers @ vec, -1.0, 1.0))


def query_disc(
    nside: int,
    theta: float,
    phi: float,
    radius: float,
    nest: bool = False,
) -> np.ndarray:
    """Pixels whose centers lie within ``radius`` of ``(theta, phi)``.

    Exact center-inclusion semantics (healpy's default, not "inclusive"
    mode).  The scan is a dense dot product over all pixel centers --
    simple and exact at the resolutions this package targets.
    """
    nside = check_nside(nside)
    if radius < 0 or radius > np.pi:
        raise ValueError("radius must be in [0, pi]")
    center = ang2vec(float(theta), float(phi))
    dist = pixel_distances(nside, center, nest=False)
    ring_pix = np.flatnonzero(dist <= radius).astype(np.int64)
    if nest:
        return np.sort(ring2nest(nside, ring_pix))
    return ring_pix
