"""The map-product registry: what the serving plane can serve.

A *product* is a named, deterministic map artifact the stack can
materialise for a ``(size, backend, realization)`` request: same inputs,
same bytes, on any node.  The registry keeps the request surface
declarative -- a serving node advertises product names and looks up the
producer here, so the backend behind a name (numpy today, jaxshim or
ompshim tomorrow) stays swappable without touching the broker/client
protocol.

Determinism is load-bearing: the serving plane coalesces overlapping
requests into one pipeline run and fails requests over to other nodes, and
both moves are only sound because ``produce(key)`` is a pure function.
Every producer here therefore simulates from counter-based seeds and
reduces in fixed observation order, exactly like :mod:`repro.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core import ImplementationType
from ..healpix import npix as healpix_npix
from ..ops import create_fake_sky
from .satellite import SizeSpec

__all__ = [
    "ProductSpec",
    "register_product",
    "get_product",
    "product_names",
    "namespaces",
    "produce_zmap",
    "produce_zmap_elastic",
    "produce_sky",
]

#: Stokes components in every served map product.
_NNZ = 3


@dataclass(frozen=True)
class ProductSpec:
    """One servable product: a name, a producer, and its output geometry.

    ``name`` is ``namespace/product`` (the broker routes on the namespace
    part).  ``producer(size, implementation, realization)`` must be pure;
    ``shape``/``dtype`` let a node size its shared-memory result slab --
    and a handle describe itself to clients -- without running anything.
    """

    name: str
    producer: Callable[[SizeSpec, ImplementationType, int], np.ndarray]
    shape: Callable[[SizeSpec], Tuple[int, ...]]
    dtype: str = "<f8"
    description: str = ""
    #: Optional multiprocess path: ``elastic_producer(size, impl,
    #: realization, n_workers)`` must return the *same bytes* as
    #: ``producer`` -- a node with elastic workers configured routes
    #: through it, and failover correctness rests on that bitwise parity.
    elastic_producer: Optional[
        Callable[[SizeSpec, ImplementationType, int, int], np.ndarray]
    ] = None

    def __post_init__(self) -> None:
        if "/" not in self.name:
            raise ValueError(
                f"product name {self.name!r} must be 'namespace/product'"
            )

    @property
    def namespace(self) -> str:
        return self.name.split("/", 1)[0]


_REGISTRY: Dict[str, ProductSpec] = {}


def register_product(spec: ProductSpec) -> ProductSpec:
    """Add a product to the registry (name collisions are an error)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"product {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_product(name: str) -> ProductSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown product {name!r}; registered: {', '.join(product_names())}"
        ) from None


def product_names() -> List[str]:
    return sorted(_REGISTRY)


def namespaces() -> List[str]:
    return sorted({spec.namespace for spec in _REGISTRY.values()})


def _map_shape(size: SizeSpec) -> Tuple[int, ...]:
    return (healpix_npix(size.nside), _NNZ)


def produce_zmap(
    size: SizeSpec,
    implementation: ImplementationType = ImplementationType.NUMPY,
    realization: int = 0,
) -> np.ndarray:
    """The noise-weighted map, accumulated in fixed observation order.

    Each observation is simulated and processed independently (the same
    per-observation function the sharded workers run), then summed in
    global observation order -- so this serverless path is bitwise
    identical to :func:`repro.parallel.run_parallel_satellite` for any
    worker count, and to any node that serves the same request.
    """
    from ..parallel.satellite import _process_one_observation

    sky = create_fake_sky(size.nside, nnz=_NNZ, seed=realization + 11)
    zmap = np.zeros(_map_shape(size), dtype=np.float64)
    for iobs in range(size.n_observations):
        zmap += _process_one_observation(iobs, size, implementation, realization, sky)
    return zmap


def produce_zmap_elastic(
    size: SizeSpec,
    implementation: ImplementationType = ImplementationType.NUMPY,
    realization: int = 0,
    n_workers: int = 1,
) -> np.ndarray:
    """:func:`produce_zmap` across the elastic work-stealing pool.

    Same bytes as the serial oracle above for any worker count or fault
    schedule (the pool's first-writer-wins commits land per-observation
    partials that are reduced in fixed observation order), so a serving
    node can switch between the serial and elastic paths -- or two nodes
    can disagree about it -- without clients seeing a byte of difference.
    ``parallel.*`` faults injected while a node produces compose with the
    serving plane's own ``serve.node`` crashes.
    """
    from ..parallel import run_parallel_satellite

    out = run_parallel_satellite(
        size,
        implementation=implementation,
        n_procs=n_workers,
        realization=realization,
    )
    return out["zmap"]


def produce_sky(
    size: SizeSpec,
    implementation: ImplementationType = ImplementationType.NUMPY,
    realization: int = 0,
) -> np.ndarray:
    """The simulated input sky itself (cheap; exercises routing/quotas)."""
    return create_fake_sky(size.nside, nnz=_NNZ, seed=realization + 11)


register_product(
    ProductSpec(
        name="satellite/zmap",
        producer=produce_zmap,
        shape=_map_shape,
        description="noise-weighted map from the satellite processing pipeline",
        elastic_producer=produce_zmap_elastic,
    )
)
register_product(
    ProductSpec(
        name="satellite/sky",
        producer=produce_sky,
        shape=_map_shape,
        description="the simulated input sky map (I/Q/U)",
    )
)
