"""The chaos soak: randomized fault schedules against whole-system invariants.

Named fault plans replay one hand-written scenario each; this harness is
the complement: from a seed it *generates* a randomized plan across the
registered fault sites, runs the stack's three execution legs under it,
and asserts the invariants that every PR has promised so far --

1. **Bitwise parity**: every faulted run's map equals the fault-free
   serial oracle byte for byte (recovery never changes results);
2. **Zero leaks**: no child process and no ``/dev/shm`` segment survives
   a seed, however hostile its schedule;
3. **Bounded recovery**: steal/hedge/respawn/recovery counters stay
   within schedule-independent bounds (no retry storms).

Determinism carries over from the named plans: a chaos seed IS the
schedule, so any red seed in CI replays locally with
``repro-bench chaos --seeds <seed>``.

The generated plans draw from a *curated* menu of (site, kind) scenarios
-- exactly the fault space where the recovery plane guarantees
bitwise-identical recovery (retries stay on-device, crashes re-execute
pure producers).  Unbounded random kinds could legitimately exhaust a
retry budget into a cross-implementation fallback, which changes results
by design; that regime belongs to the named-plan tests, not the parity
gate.  Two sites are exercised elsewhere and excluded here:
``ompshim.target_region`` only fires on the omp_target backend, and
``serve.request``'s client-retry drill lives in the serve smoke.

Legs per seed (each runs only when the generated plan targets its sites):

* **device** -- the tiny/jax pipeline: OOM, transfer faults, launch
  failures, stalls;
* **elastic** -- the multiprocess benchmark on the work-stealing pool:
  worker crashes, heartbeat loss, stragglers;
* **serve**  -- two in-process serving nodes (optionally elastic):
  a node crash mid-produce with failover to the survivor;
* **store**  -- spill-to-store then windowed streaming: torn chunk and
  manifest writes during ingest (commit retries, ``.prev`` fallback) and
  bit rot at read time (quarantine + regeneration from the registered
  producer), gated against the continuous-accumulation stream oracle and
  the store's own leak report.
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import os
import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import ImplementationType
from ..parallel.elastic import ElasticConfig
from ..resilience.faults import FaultKind, FaultPlan, FaultSpec
from .satellite import SIZES, SizeSpec

__all__ = ["ChaosFailure", "generate_plan", "run_chaos_soak", "CHAOS_MENU"]

_SHM_DIR = "/dev/shm"

#: The elastic leg's problem size: enough observations to shard, small
#: enough that a seed runs in seconds.
_ELASTIC_SIZE = SizeSpec("chaos_par", 4, 2, 512, 16)

#: Scheduler knobs for the elastic leg: tight deadlines so injected
#: stalls/mutes actually cross them within a short soak.
_ELASTIC_CFG = ElasticConfig(
    lease_s=1.0,
    heartbeat_s=0.1,
    hedge_s=0.25,
    total_timeout_s=120.0,
    drain_timeout_s=5.0,
)

#: The curated scenario menu: every entry preserves bitwise recovery.
#: ``leg`` routes the spec to the execution leg that polls its site.
CHAOS_MENU: Tuple[Dict[str, Any], ...] = (
    {"leg": "device", "site": "pool.allocate", "kind": FaultKind.OOM},
    {"leg": "device", "site": "transfer.h2d", "kind": FaultKind.TRANSFER_FAIL},
    {"leg": "device", "site": "transfer.d2h", "kind": FaultKind.TRANSFER_FAIL},
    {"leg": "device", "site": "transfer.h2d", "kind": FaultKind.TRANSFER_CORRUPT},
    {"leg": "device", "site": "device.launch", "kind": FaultKind.LAUNCH_FAIL},
    {"leg": "device", "site": "device.launch", "kind": FaultKind.DEVICE_STALL},
    {"leg": "elastic", "site": "parallel.worker", "kind": FaultKind.WORKER_CRASH},
    {"leg": "elastic", "site": "parallel.heartbeat", "kind": FaultKind.HEARTBEAT_LOSS},
    {"leg": "elastic", "site": "parallel.task", "kind": FaultKind.TASK_STALL},
    {"leg": "serve", "site": "serve.node", "kind": FaultKind.NODE_CRASH},
    {"leg": "store", "site": "store.write", "kind": FaultKind.TORN_WRITE},
    {"leg": "store", "site": "store.manifest", "kind": FaultKind.TORN_WRITE},
    {"leg": "store", "site": "store.read", "kind": FaultKind.BIT_FLIP},
)


class ChaosFailure(AssertionError):
    """A chaos invariant did not hold for some seed."""


def _spec_for(entry: Dict[str, Any], rng: random.Random) -> List[FaultSpec]:
    """Randomize one menu entry into concrete spec(s), within safe bounds."""
    site, kind = entry["site"], entry["kind"]
    if kind is FaultKind.DEVICE_STALL:
        return [
            FaultSpec(
                site=site,
                kind=kind,
                every=rng.randint(3, 6),
                stall_seconds=1.0e-3,
            )
        ]
    if kind is FaultKind.LAUNCH_FAIL:
        # At most 2 consecutive failures: the dispatch retry budget is 3
        # attempts, so recovery stays on-device (no fallback, no drift).
        first = rng.randint(1, 8)
        nth = (first,) if rng.random() < 0.5 else (first, first + 1)
        return [FaultSpec(site=site, kind=kind, nth=nth, max_fires=len(nth))]
    if kind is FaultKind.TASK_STALL:
        return [
            FaultSpec(
                site=site,
                kind=kind,
                nth=(rng.randint(1, 4),),
                max_fires=1,
                # Straddles the hedge deadline; stays under the lease so a
                # heartbeating straggler is hedged, not stolen.
                stall_seconds=round(rng.uniform(0.1, 0.6), 3),
            )
        ]
    if kind is FaultKind.HEARTBEAT_LOSS:
        nth = rng.randint(1, 4)
        specs = [FaultSpec(site=site, kind=kind, nth=(nth,), max_fires=1)]
        if rng.random() < 0.5:
            # Half the time the silent worker is also slow: mute + a stall
            # past the lease forces an actual lease expiry and steal (a
            # mute alone can finish before its lease runs out).
            specs.append(
                FaultSpec(
                    site="parallel.task",
                    kind=FaultKind.TASK_STALL,
                    nth=(nth,),
                    max_fires=1,
                    stall_seconds=_ELASTIC_CFG.lease_s + 0.5,
                )
            )
        return specs
    if kind is FaultKind.WORKER_CRASH:
        return [
            FaultSpec(site=site, kind=kind, nth=(rng.randint(1, 3),), max_fires=1)
        ]
    if kind is FaultKind.NODE_CRASH:
        return [FaultSpec(site=site, kind=kind, nth=(1,), max_fires=1)]
    if kind is FaultKind.TORN_WRITE:
        # Manifests commit once per observation; chunk commits are dense.
        # One fire each: the commit path retries, and nth counts *calls*,
        # so the retry of the torn call cannot re-fire the same spec.
        last = 2 if site == "store.manifest" else 12
        return [
            FaultSpec(site=site, kind=kind, nth=(rng.randint(1, last),), max_fires=1)
        ]
    if kind is FaultKind.BIT_FLIP:
        # A random byte of a random early chunk read rots on disk; the
        # reader's CRC check must catch it and regenerate.
        return [
            FaultSpec(site=site, kind=kind, nth=(rng.randint(1, 8),), max_fires=1)
        ]
    # OOM / transfer faults: one fire at a random early call.
    return [
        FaultSpec(site=site, kind=kind, nth=(rng.randint(1, 8),), max_fires=1)
    ]


def generate_plan(seed: int) -> Dict[str, FaultPlan]:
    """The randomized schedule for one seed, split per execution leg.

    Pure function of ``seed``: the same seed always yields the same plans
    (the replay contract).  Returns ``{leg: FaultPlan}`` for each leg the
    schedule targets; an empty dict never happens (2-4 scenarios are
    always drawn).
    """
    rng = random.Random(seed)
    picks = rng.sample(list(CHAOS_MENU), k=rng.randint(2, 4))
    by_leg: Dict[str, List[FaultSpec]] = {}
    for entry in picks:
        by_leg.setdefault(entry["leg"], []).extend(_spec_for(entry, rng))
    return {
        leg: FaultPlan(name=f"chaos-{seed}-{leg}", specs=tuple(specs), seed=seed)
        for leg, specs in sorted(by_leg.items())
    }


def _shm_entries() -> List[str]:
    try:
        return sorted(os.listdir(_SHM_DIR))
    except OSError:
        return []


def _leak_sweep(
    shm_before: Sequence[str], children_before: set
) -> Tuple[List[str], List[int]]:
    """What survived a seed: (shm segments, child pids), after settling."""
    gc.collect()
    leaked_shm: List[str] = []
    leaked_procs: List[int] = []
    for _ in range(50):
        leaked_shm = sorted(
            e
            for e in set(_shm_entries()) - set(shm_before)
            if not e.startswith("sem.mp-")
        )
        leaked_procs = sorted(
            p.pid for p in mp.active_children() if p.pid not in children_before
        )
        if not leaked_shm and not leaked_procs:
            break
        time.sleep(0.1)
    return leaked_shm, leaked_procs


def _bitwise(a: np.ndarray, b: np.ndarray) -> bool:
    return bool(a.shape == b.shape and a.dtype == b.dtype and np.array_equal(a, b))


class _References:
    """Fault-free serial oracles, computed once per (leg, realization)."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, int], np.ndarray] = {}

    def device(self, realization: int) -> np.ndarray:
        key = ("device", realization)
        if key not in self._cache:
            from ..accel import SimulatedDevice
            from ..ompshim import OmpTargetRuntime
            from .satellite import run_satellite_benchmark

            out = run_satellite_benchmark(
                SIZES["tiny"],
                ImplementationType.JAX,
                accel=OmpTargetRuntime(SimulatedDevice()),
                mapmaking=False,
                realization=realization,
            )
            self._cache[key] = np.asarray(out["zmap"])
        return self._cache[key]

    def map_oracle(self, size: SizeSpec, realization: int) -> np.ndarray:
        """The serial fixed-order zmap: the oracle both the elastic and
        serve legs must reproduce bitwise."""
        key = (f"oracle-{size.name}", realization)
        if key not in self._cache:
            from .products import produce_zmap

            self._cache[key] = produce_zmap(
                size, ImplementationType.NUMPY, realization
            )
        return self._cache[key]

    def stream_oracle(self, size: SizeSpec, realization: int) -> np.ndarray:
        """The continuous-accumulation zmap: one pipeline applied to the
        full in-memory dataset.  This is what windowed streaming must
        reproduce bitwise -- a *different* byte sequence from
        :meth:`map_oracle`, which sums per-observation partials."""
        key = (f"stream-{size.name}", realization)
        if key not in self._cache:
            from ..ops import create_fake_sky
            from ..parallel.satellite import make_satellite_data_shard
            from .satellite import satellite_processing_pipeline

            sky = create_fake_sky(size.nside, nnz=3, seed=realization + 11)
            data = make_satellite_data_shard(
                size,
                list(range(size.n_observations)),
                realization=realization,
                sky=sky,
            )
            pipe = satellite_processing_pipeline(
                size.nside, implementation=ImplementationType.NUMPY
            )
            pipe.apply(data)
            self._cache[key] = np.array(data["zmap"])
        return self._cache[key]


def _run_device_leg(
    plan: FaultPlan, realization: int, refs: _References
) -> Dict[str, Any]:
    from ..accel import SimulatedDevice
    from ..ompshim import OmpTargetRuntime
    from ..resilience import resilient
    from .satellite import run_satellite_benchmark

    reference = refs.device(realization)
    accel = OmpTargetRuntime(SimulatedDevice())
    error: Optional[str] = None
    faulted: Optional[np.ndarray] = None
    with resilient(plan) as ctrl:
        ctrl.bind_clock(accel.device.clock)
        try:
            out = run_satellite_benchmark(
                SIZES["tiny"],
                ImplementationType.JAX,
                accel=accel,
                mapmaking=False,
                realization=realization,
            )
            faulted = np.asarray(out["zmap"])
        except Exception as exc:  # noqa: BLE001 - the report carries it
            error = f"{type(exc).__name__}: {exc}"
        report = ctrl.report()
    return {
        "leg": "device",
        "bitwise": faulted is not None and _bitwise(reference, faulted),
        "error": error,
        "counters": report["counters"],
        "fired": report["faults"],
    }


def _run_elastic_leg(
    plan: FaultPlan, realization: int, n_workers: int, refs: _References
) -> Dict[str, Any]:
    from ..parallel import run_parallel_satellite
    from ..resilience import resilient

    reference = refs.map_oracle(_ELASTIC_SIZE, realization)
    error: Optional[str] = None
    faulted: Optional[np.ndarray] = None
    out: Dict[str, Any] = {}
    with resilient(plan) as ctrl:
        try:
            out = run_parallel_satellite(
                _ELASTIC_SIZE,
                ImplementationType.NUMPY,
                n_procs=n_workers,
                realization=realization,
                elastic_config=_ELASTIC_CFG,
            )
            faulted = out["zmap"]
        except Exception as exc:  # noqa: BLE001 - the report carries it
            error = f"{type(exc).__name__}: {exc}"
        report = ctrl.report()

    # Bounded-recovery invariant: counters scale with the schedule, never
    # with retry storms.  The bounds are deliberately loose (scheduling
    # noise may add a spurious lease expiry) but schedule-independent.
    n_tasks = _ELASTIC_SIZE.n_observations
    counters = dict(out.get("elastic", {}).get("counters", {}))
    bounds = {
        "steals": 2 * n_tasks,
        "hedges": n_tasks,
        "respawns": 2 * n_workers,
        "duplicates": 2 * n_tasks,
        "inline_runs": n_tasks,
        "worker_deaths": 2 * n_workers + 2,
    }
    unbounded = {
        name: (counters.get(name, 0), bound)
        for name, bound in bounds.items()
        if counters.get(name, 0) > bound
    }
    return {
        "leg": "elastic",
        "n_workers": n_workers,
        "bitwise": faulted is not None and _bitwise(reference, faulted),
        "error": error,
        "counters": report["counters"],
        "elastic_counters": counters,
        "unbounded": {k: list(v) for k, v in unbounded.items()},
        "fired": report["faults"],
    }


def _run_serve_leg(
    plan: FaultPlan, realization: int, elastic_workers: int, refs: _References
) -> Dict[str, Any]:
    from ..resilience import resilient
    from ..serve.handles import ProductKey
    from ..serve.node import NodeLostError, ServeNode

    reference = refs.map_oracle(SIZES["tiny"], realization)
    key = ProductKey("satellite/zmap", "tiny", "numpy", realization=realization)
    nodes = [
        ServeNode(f"chaos-{nid}", elastic_workers=elastic_workers)
        for nid in ("a", "b")
    ]
    error: Optional[str] = None
    failed_over = False
    got: Optional[np.ndarray] = None
    try:
        with resilient(plan) as ctrl:
            try:
                handle = nodes[0].produce(key)
                got = nodes[0].fetch(handle.handle_id)
            except NodeLostError:
                # The serve-plane invariant under NODE_CRASH: the
                # survivor recomputes the product deterministically.
                failed_over = True
                handle = nodes[1].produce(key)
                got = nodes[1].fetch(handle.handle_id)
            report = ctrl.report()
    except Exception as exc:  # noqa: BLE001 - the report carries it
        error = f"{type(exc).__name__}: {exc}"
        report = {"counters": {}, "faults": []}
    finally:
        for node in nodes:
            node.shutdown()
    return {
        "leg": "serve",
        "elastic_workers": elastic_workers,
        "failed_over": failed_over,
        "bitwise": got is not None and _bitwise(reference, got),
        "error": error,
        "counters": report["counters"],
        "fired": report["faults"],
    }


def _run_store_leg(
    plan: FaultPlan, realization: int, refs: _References
) -> Dict[str, Any]:
    import tempfile
    from pathlib import Path

    from ..ops import create_fake_sky
    from ..resilience import resilient
    from ..store import (
        ObservationStore,
        StreamConfig,
        leak_report,
        reset_leak_registry,
        stream_pipeline,
    )
    from .ingest import ingest_satellite_store
    from .satellite import satellite_processing_pipeline

    size = SIZES["tiny"]
    reference = refs.stream_oracle(size, realization)
    sky = create_fake_sky(size.nside, nnz=3, seed=realization + 11)
    error: Optional[str] = None
    faulted: Optional[np.ndarray] = None
    scrub: Optional[Dict[str, Any]] = None
    store_leaks: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-store-") as tmp:
        root = Path(tmp) / "store"
        with resilient(plan) as ctrl:
            try:
                # Spill under the schedule (torn chunk/manifest writes fire
                # here and must be absorbed by commit retries), reopen with
                # the scrub, then stream several windows per observation
                # (bit rot fires on the window reads).
                ingest_satellite_store(root, size, realization)
                store = ObservationStore.open(root)
                scrub = store.scrub_report.as_dict()
                pipe = satellite_processing_pipeline(
                    size.nside, implementation=ImplementationType.NUMPY
                )
                out = stream_pipeline(
                    store,
                    pipe,
                    meta={"sky_map": sky},
                    config=StreamConfig(
                        window_samples=max(1, size.n_samples // 4)
                    ),
                )
                faulted = np.asarray(out["zmap"])
            except Exception as exc:  # noqa: BLE001 - the report carries it
                error = f"{type(exc).__name__}: {exc}"
            report = ctrl.report()
        # Sweep while the store still exists, then forget it: the tempdir
        # is gone after this block, so stale roots must not accumulate.
        store_leaks = leak_report()
        reset_leak_registry()

    # Bounded recovery: every store spec fires at most once, and one fire
    # costs at most one retry or one quarantine+regeneration.
    counters = dict(report["counters"])
    bounds = {
        "store.commit_retries": 4,
        "store.chunks_quarantined": 4,
        "store.chunks_regenerated": 4,
        "store.manifest_fallbacks": 2,
    }
    unbounded = {
        name: (counters.get(name, 0), bound)
        for name, bound in bounds.items()
        if counters.get(name, 0) > bound
    }
    return {
        "leg": "store",
        "bitwise": faulted is not None and _bitwise(reference, faulted),
        "error": error,
        "scrub": scrub,
        "store_leaks": store_leaks,
        "counters": counters,
        "unbounded": {k: list(v) for k, v in unbounded.items()},
        "fired": report["faults"],
    }


def run_chaos_soak(
    seeds: Sequence[int],
    verbose: bool = False,
    stop_on_failure: bool = False,
) -> Dict[str, Any]:
    """Soak the stack over ``seeds``; returns the ``repro-chaos/1`` report.

    Each seed generates its randomized plan, runs every targeted leg, and
    checks the three invariants (parity, leaks, bounds).  The report
    records per-seed verdicts and the fired-fault timelines, so any
    failure is replayable from its seed alone.
    """

    def say(msg: str) -> None:
        if verbose:
            print(f"[chaos] {msg}")

    refs = _References()
    results: List[Dict[str, Any]] = []
    t_start = time.perf_counter()
    for seed in seeds:
        rng = random.Random(seed ^ 0x5EED)  # leg params, decoupled from specs
        realization = rng.randint(0, 3)
        n_workers = rng.randint(2, 3)
        serve_elastic = rng.choice([0, 1])
        plans = generate_plan(seed)

        shm_before = _shm_entries()
        children_before = {p.pid for p in mp.active_children()}
        t0 = time.perf_counter()
        legs: List[Dict[str, Any]] = []
        for leg, plan in plans.items():
            if leg == "device":
                legs.append(_run_device_leg(plan, realization, refs))
            elif leg == "elastic":
                legs.append(_run_elastic_leg(plan, realization, n_workers, refs))
            elif leg == "serve":
                legs.append(
                    _run_serve_leg(plan, realization, serve_elastic, refs)
                )
            elif leg == "store":
                legs.append(_run_store_leg(plan, realization, refs))
        leaked_shm, leaked_procs = _leak_sweep(shm_before, children_before)

        problems: List[str] = []
        for leg in legs:
            if leg["error"]:
                problems.append(f"{leg['leg']}: {leg['error']}")
            elif not leg["bitwise"]:
                problems.append(f"{leg['leg']}: maps differ from the oracle")
            if leg.get("unbounded"):
                problems.append(f"{leg['leg']}: counters exceed bounds {leg['unbounded']}")
            if leg.get("store_leaks"):
                problems.append(f"{leg['leg']}: store leaks {leg['store_leaks']}")
        if leaked_shm:
            problems.append(f"leaked shm segments: {leaked_shm}")
        if leaked_procs:
            problems.append(f"leaked child processes: {leaked_procs}")

        result = {
            "seed": seed,
            "realization": realization,
            "plan": {
                leg: [
                    {
                        "site": s.site,
                        "kind": s.kind.value,
                        "nth": list(s.nth),
                        "every": s.every,
                        "max_fires": s.max_fires,
                        "stall_seconds": s.stall_seconds,
                    }
                    for s in plan.specs
                ]
                for leg, plan in plans.items()
            },
            "legs": legs,
            "leaks": {"shm": leaked_shm, "processes": leaked_procs},
            "seconds": round(time.perf_counter() - t0, 3),
            "ok": not problems,
            "problems": problems,
        }
        results.append(result)
        fired = sum(len(leg["fired"]) for leg in legs)
        say(
            f"seed {seed}: {'ok' if result['ok'] else 'FAILED'} "
            f"({'+'.join(sorted(plans))}, {fired} fault(s) fired, "
            f"{result['seconds']:.2f}s)"
            + (f" -- {'; '.join(problems)}" if problems else "")
        )
        if problems and stop_on_failure:
            break

    report = {
        "schema": "repro-chaos/1",
        "seeds": list(seeds),
        "results": results,
        "seconds": round(time.perf_counter() - t_start, 3),
        "ok": all(r["ok"] for r in results) and len(results) == len(seeds),
    }
    return report
