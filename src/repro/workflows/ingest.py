"""Out-of-core ingest: simulate, spill to a store, stream back through.

The ingest benchmark measures the storage half of streaming out-of-core
execution: the satellite dataset is simulated and spilled into a
:class:`~repro.store.ObservationStore`, then the processing pipeline runs
window-by-window under a host-RSS budget -- serially (eager and compiled
plans) and on the elastic pool -- with every run parity-gated against the
corresponding all-in-memory oracle.  Fault legs replay the ``store-*``
plans: torn writes during spill (commit retries), and bit rot at read
time (quarantine + regeneration from the registered producer).

The registered ``satellite-sim`` producer makes regeneration possible:
simulation is counter-based and layout-independent, so re-simulating one
observation reproduces its spilled bytes exactly.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core import Data, ImplementationType
from ..core.pipeline import MovementPolicy
from ..healpix import npix as healpix_npix
from ..obs import state as obs_state
from ..ompshim import OmpTargetRuntime
from ..ops import create_fake_sky
from ..parallel.elastic import ElasticConfig, ElasticPool
from ..parallel.satellite import make_satellite_data_shard
from ..parallel.shm import SharedSlab
from ..resilience import named_plan, resilient
from ..store import (
    ObservationStore,
    StreamConfig,
    register_producer,
    stream_pipeline,
)
from .satellite import SIZES, SizeSpec, satellite_processing_pipeline

__all__ = [
    "satellite_observation_producer",
    "ingest_satellite_store",
    "run_streamed_elastic",
    "run_ingest_benchmark",
    "streamed_task_runner",
    "streamed_task_cleanup",
]

_NNZ = 3

#: The producer name recorded in every ingested manifest.
PRODUCER_NAME = "satellite-sim"


def _size_args(size: SizeSpec) -> Dict[str, Any]:
    return {
        "name": size.name,
        "n_observations": size.n_observations,
        "n_pixels": size.n_pixels,
        "n_samples": size.n_samples,
        "nside": size.nside,
    }


def satellite_observation_producer(
    size: Union[Dict[str, Any], SizeSpec], iobs: int, realization: int
) -> Any:
    """Re-simulate one observation from scratch (pure, counter-based)."""
    spec = SizeSpec(**size) if isinstance(size, dict) else size
    sky = create_fake_sky(spec.nside, nnz=_NNZ, seed=realization + 11)
    data = make_satellite_data_shard(spec, [iobs], realization=realization, sky=sky)
    return data.obs[0]


register_producer(PRODUCER_NAME, satellite_observation_producer)


def ingest_satellite_store(
    root: Union[str, Path],
    size: SizeSpec,
    realization: int = 0,
    chunk_samples: Optional[int] = None,
) -> ObservationStore:
    """Simulate the benchmark dataset and spill it into a fresh store.

    Every observation is spilled with the ``satellite-sim`` producer
    registered in its manifest, and the input sky map is saved as
    store-level meta so streamed runs (and worker processes) read back
    the exact bytes the simulation used.
    """
    if chunk_samples is None:
        chunk_samples = max(64, size.n_samples // 8)
    store = ObservationStore.create(root, chunk_samples=chunk_samples)
    sky = create_fake_sky(size.nside, nnz=_NNZ, seed=realization + 11)
    data = make_satellite_data_shard(
        size, list(range(size.n_observations)), realization=realization, sky=sky
    )
    for iobs, ob in enumerate(data.obs):
        store.spill_observation(
            ob,
            producer={
                "name": PRODUCER_NAME,
                "args": {
                    "size": _size_args(size),
                    "iobs": iobs,
                    "realization": realization,
                },
            },
        )
    store.save_meta("sky_map", sky)
    return store


# -- elastic streamed execution ------------------------------------------------

#: Per-worker-process cache: attach the slab and open the store once per
#: (segment, store) pair, not once per stolen/hedged task.
_STREAM_CTX: Dict[Any, Any] = {}


def streamed_task_runner(
    wid: int,
    iobs: int,
    store_root: str,
    nside: int,
    implementation: ImplementationType,
    window_samples: Optional[int],
    slab_spec,
) -> None:
    """One elastic task: stream one observation's windows into slab slot ``iobs``.

    The task streams its windows **sequentially in ascending sample
    order**, accumulating a per-observation partial map in a private meta
    dict, then assigns the finished partial into its slot.  Assignment is
    idempotent and the bytes are a function of ``iobs`` and the store
    alone -- never of ``wid``, window scheduling, or steal/hedge history
    -- so elastic recovery composes unchanged with streaming.  (Windows
    of one observation cannot fan out across workers: floating-point
    accumulation is order-sensitive, so the window sequence within an
    observation must stay sequential to preserve bitwise parity.)
    """
    key = (slab_spec.shm_name, str(store_root))
    ctx = _STREAM_CTX.get(key)
    if ctx is None:
        slab = SharedSlab.attach(slab_spec)
        # The parent scrubbed at open; workers skip the integrity pass.
        store = ObservationStore.open(store_root, scrub=False)
        sky = store.load_meta("sky_map")
        pipe = satellite_processing_pipeline(nside, implementation=implementation)
        _STREAM_CTX[key] = ctx = (slab, store, sky, pipe)
    slab, store, sky, pipe = ctx

    def run() -> np.ndarray:
        out = stream_pipeline(
            store,
            pipe,
            meta={"sky_map": sky},
            config=StreamConfig(window_samples=window_samples),
            observations=[iobs],
        )
        return out["zmap"]

    tr = obs_state.active
    if tr is not None:
        with tr.span(f"stream_obs_{iobs:04d}", rank=wid, obs=iobs):
            slab.array("zmap")[iobs] = run()
    else:
        slab.array("zmap")[iobs] = run()


def streamed_task_cleanup() -> None:
    """Close cached slab mappings (runs in each worker before exit)."""
    for slab, _store, _sky, _pipe in _STREAM_CTX.values():
        slab.close()
    _STREAM_CTX.clear()


def run_streamed_elastic(
    store_root: Union[str, Path],
    implementation: ImplementationType = ImplementationType.NUMPY,
    n_procs: int = 1,
    window_samples: Optional[int] = None,
    host_budget_bytes: Optional[int] = None,
    elastic_config: Optional[ElasticConfig] = None,
    scrub: bool = True,
) -> Dict[str, Any]:
    """Stream every observation through the elastic pool; reduce the map.

    Tasks address whole observations; each streams its (observation,
    window) pairs internally, so steal/hedge/crash recovery needs no
    ordering guarantees.  The parent reduces slab slots in fixed
    observation order -- bitwise identical for any worker count, window
    size, and fault schedule.
    """
    store_root = str(store_root)
    store = ObservationStore.open(store_root, scrub=scrub)
    sky = store.load_meta("sky_map")
    n_pix = sky.shape[0]
    nside = int(round((n_pix / 12) ** 0.5))
    n_obs = store.n_observations
    if host_budget_bytes is not None and window_samples is None:
        per = max(store.bytes_per_sample(i) for i in range(n_obs))
        window_samples = max(1, host_budget_bytes // per)

    wall0 = time.perf_counter()
    with SharedSlab.create({"zmap": ((n_obs, n_pix, _NNZ), np.float64)}) as slab:
        pool = ElasticPool(
            streamed_task_runner,
            args=(store_root, nside, implementation, window_samples, slab.spec),
            n_workers=max(1, min(n_procs, n_obs)),
            config=elastic_config,
            worker_cleanup=streamed_task_cleanup,
        )
        try:
            report = pool.run(list(range(n_obs)))
        finally:
            # The inline-recovery lane caches a slab attachment in this
            # process; close it before the owner unlinks the segment.
            streamed_task_cleanup()
        zmap = np.zeros((n_pix, _NNZ), dtype=np.float64)
        for iobs in range(n_obs):
            zmap += slab.array("zmap")[iobs]
    return {
        "zmap": zmap,
        "wall_seconds": time.perf_counter() - wall0,
        "n_workers": pool.n_workers,
        "window_samples": window_samples,
        "scrub": store.scrub_report.as_dict() if store.scrub_report else None,
        "elastic": {
            "counters": dict(report.counters),
            "committed": len(report.committed),
            "workers_spawned": report.workers_spawned,
        },
    }


# -- the parity-gated ingest benchmark -----------------------------------------


def run_ingest_benchmark(
    size: Union[str, SizeSpec] = "tiny",
    implementation: ImplementationType = ImplementationType.NUMPY,
    realization: int = 0,
    host_budget_bytes: Optional[int] = None,
    chunk_samples: Optional[int] = None,
    elastic_procs: Sequence[int] = (1, 2),
    compiled: bool = True,
    faults: bool = True,
    seed: int = 0,
    out_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Spill, stream, and parity-gate against the in-memory oracles.

    Legs: eager streamed vs in-memory (same implementation), compiled
    streamed vs in-memory compiled (OpenMP target on the simulated
    device), elastic streamed for each worker count vs the per-observation
    partial-sum oracle, plus fault replays of the ``store-torn-write`` and
    ``store-bitrot`` plans.  ``identical`` in the result is the single
    gate: True only if every leg reproduced its oracle bitwise.
    """
    if isinstance(size, str):
        size = SIZES[size]
    sky = create_fake_sky(size.nside, nnz=_NNZ, seed=realization + 11)
    tmp = None
    if out_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-ingest-")
        out_dir = tmp.name
    out_dir = Path(out_dir)
    report: Dict[str, Any] = {
        "size": size.name,
        "implementation": implementation.name.lower(),
        "realization": realization,
    }
    try:
        # -- in-memory eager oracle (continuous accumulation) -----------------
        all_obs = list(range(size.n_observations))
        data = make_satellite_data_shard(size, all_obs, realization=realization, sky=sky)
        pipe = satellite_processing_pipeline(size.nside, implementation=implementation)
        pipe.apply(data)
        zmap_mem = np.array(data["zmap"])

        # -- ingest under the torn-write plan (commit retries) ----------------
        t0 = time.perf_counter()
        if faults:
            with resilient(named_plan("store-torn-write", seed=seed)) as ctrl:
                store = ingest_satellite_store(
                    out_dir / "store", size, realization, chunk_samples
                )
                report["torn_write"] = {
                    "faults_injected": ctrl.report()["counters"].get("faults_injected", 0),
                    "commit_retries": ctrl.report()["counters"].get("store.commit_retries", 0),
                }
        else:
            store = ingest_satellite_store(out_dir / "store", size, realization, chunk_samples)
        report["ingest_seconds"] = time.perf_counter() - t0
        report["chunk_samples"] = store.chunk_samples

        # -- streamed eager under the budget ----------------------------------
        store = ObservationStore.open(out_dir / "store")
        report["scrub"] = store.scrub_report.as_dict()
        if host_budget_bytes is None:
            # Default: a budget a quarter of one observation's stored
            # bytes, forcing several windows per observation.
            host_budget_bytes = max(
                1, store.bytes_per_sample(0) * size.n_samples // 4
            )
        report["host_budget_bytes"] = int(host_budget_bytes)
        cfg = StreamConfig(host_budget_bytes=host_budget_bytes)
        t0 = time.perf_counter()
        pipe2 = satellite_processing_pipeline(size.nside, implementation=implementation)
        streamed = stream_pipeline(store, pipe2, meta={"sky_map": sky}, config=cfg)
        report["stream_seconds"] = time.perf_counter() - t0
        report["stream_windows"] = streamed.stream_windows
        report["eager_identical"] = bool(np.array_equal(streamed["zmap"], zmap_mem))

        # -- streamed bit-rot replay ------------------------------------------
        if faults:
            with resilient(named_plan("store-bitrot", seed=seed)) as ctrl:
                pipe3 = satellite_processing_pipeline(size.nside, implementation=implementation)
                rotted = stream_pipeline(store, pipe3, meta={"sky_map": sky}, config=cfg)
                counters = ctrl.report()["counters"]
            report["bitrot"] = {
                "faults_injected": counters.get("faults_injected", 0),
                "quarantined": counters.get("store.chunks_quarantined", 0),
                "regenerated": counters.get("store.chunks_regenerated", 0),
                "identical": bool(np.array_equal(rotted["zmap"], zmap_mem)),
            }

        # -- compiled plan streamed vs in-memory ------------------------------
        if compiled:
            def compiled_pipe():
                accel = OmpTargetRuntime()
                p = satellite_processing_pipeline(
                    size.nside,
                    implementation=ImplementationType.OMP_TARGET,
                    accel=accel,
                    policy=MovementPolicy.HYBRID,
                )
                p.plan = "compiled"
                return p, accel

            cdata = make_satellite_data_shard(size, all_obs, realization=realization, sky=sky)
            cp, caccel = compiled_pipe()
            cp.exec(cdata, use_accel=True, accel=caccel)
            sp, saccel = compiled_pipe()
            cstream = stream_pipeline(
                store, sp, meta={"sky_map": sky}, config=cfg,
                use_accel=True, accel=saccel,
            )
            report["compiled_identical"] = bool(
                np.array_equal(cstream["zmap"], cdata["zmap"])
            )

        # -- elastic streamed for each worker count ---------------------------
        n_pix = healpix_npix(size.nside)
        oracle = np.zeros((n_pix, _NNZ), dtype=np.float64)
        for iobs in all_obs:
            d = make_satellite_data_shard(size, [iobs], realization=realization, sky=sky)
            p = satellite_processing_pipeline(size.nside, implementation=implementation)
            p.apply(d)
            oracle += d["zmap"]
        report["elastic"] = {}
        for n_procs in elastic_procs:
            out = run_streamed_elastic(
                out_dir / "store",
                implementation=implementation,
                n_procs=n_procs,
                host_budget_bytes=host_budget_bytes,
                scrub=False,
            )
            report["elastic"][str(n_procs)] = {
                "identical": bool(np.array_equal(out["zmap"], oracle)),
                "window_samples": out["window_samples"],
                "committed": out["elastic"]["committed"],
            }

        gates = [report["eager_identical"]]
        if compiled:
            gates.append(report["compiled_identical"])
        if faults:
            gates.append(report["bitrot"]["identical"])
        gates.extend(e["identical"] for e in report["elastic"].values())
        report["identical"] = bool(all(gates))
        return report
    finally:
        if tmp is not None:
            tmp.cleanup()
