"""Figure report generators: the tables behind Figs 2-6.

Each ``fig*`` function returns a rendered ASCII table (and the underlying
rows) matching one figure of the paper; the benchmark harness prints them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..kernels import BENCHMARK_KERNELS, KERNEL_NAMES
from ..perfmodel import (
    Backend,
    full_benchmark_runtimes,
    per_kernel_times,
    process_sweep,
)
from ..perfmodel.calibration import CPU_MODEL, FULL_BENCHMARK, KERNEL_CALIBRATION
from ..utils.cloc import LineCount, count_file
from ..utils.table import Table, format_seconds

__all__ = [
    "loc_per_kernel",
    "loc_totals",
    "fig2_loc_total",
    "fig3_loc_per_kernel",
    "fig4_process_sweep",
    "fig5_full_benchmark",
    "fig6_per_kernel",
]

_KERNELS_ROOT = Path(__file__).resolve().parent.parent / "kernels"

#: Implementation label -> (kernel directory, dependency files).  The
#: dependency lists mirror the paper's Fig 2 definition: code the port
#: authors wrote beyond the kernel bodies (shared math, data movement,
#: GPU-related types) -- not the underlying framework libraries.
_IMPLEMENTATIONS: Dict[str, Tuple[str, List[Path]]] = {
    "cpu_baseline": (
        "numpy_cpu",
        [
            _KERNELS_ROOT.parent / "math" / "quaternion.py",
            _KERNELS_ROOT.parent / "healpix" / "ring.py",
            _KERNELS_ROOT.parent / "healpix" / "nest.py",
            _KERNELS_ROOT.parent / "healpix" / "bits.py",
            _KERNELS_ROOT.parent / "healpix" / "core.py",
        ],
    ),
    "jax": (
        "jax",
        [
            _KERNELS_ROOT / "jax" / "qarray.py",
            _KERNELS_ROOT / "jax" / "healpix_jax.py",
            _KERNELS_ROOT / "common.py",
        ],
    ),
    "omp_target": (
        "omp",
        [
            _KERNELS_ROOT / "common.py",
            # The OMP port's hand-written accelerator machinery (paper
            # §3.1.2): the device memory pool and the host<->device
            # association/data-movement layer.
            _KERNELS_ROOT.parent / "accel" / "pool.py",
            _KERNELS_ROOT.parent / "ompshim" / "datamap.py",
        ],
    ),
}


def loc_per_kernel(impl: str) -> Dict[str, int]:
    """Code lines of each kernel module for one implementation."""
    directory, _ = _IMPLEMENTATIONS[impl]
    out: Dict[str, int] = {}
    for name in KERNEL_NAMES:
        path = _KERNELS_ROOT / directory / f"{name}.py"
        out[name] = count_file(path).code
    return out


def loc_totals(impl: str) -> Tuple[int, int]:
    """(kernel-only code lines, with-dependencies code lines)."""
    directory, deps = _IMPLEMENTATIONS[impl]
    kernel_lines = sum(loc_per_kernel(impl).values())
    dep_lines = 0
    for path in deps:
        dep_lines += count_file(path).code
    return kernel_lines, kernel_lines + dep_lines


def fig2_loc_total() -> Tuple[str, Dict[str, Tuple[int, int]]]:
    """Fig 2: total lines per implementation, kernel-only and with deps."""
    rows: Dict[str, Tuple[int, int]] = {}
    table = Table(
        ["implementation", "kernel LoC", "LoC incl. deps", "kernel ratio vs CPU"],
        title="Fig 2 - lines of code per implementation",
    )
    base = None
    for impl in _IMPLEMENTATIONS:
        k, total = loc_totals(impl)
        rows[impl] = (k, total)
        if impl == "cpu_baseline":
            base = k
    for impl, (k, total) in rows.items():
        table.add_row([impl, k, total, k / base])
    note = (
        "paper: JAX ~1.2x shorter than the C++ CPU baseline, OMP ~1.8x longer.\n"
        "Here the OMP ratio reproduces (pragma/mapping/guard overhead is\n"
        "intrinsic), but the JAX ratio inverts: the paper's baseline is\n"
        "verbose C++, while this reproduction's 'compiled CPU' stand-in is\n"
        "already NumPy -- the very high-level style that made the paper's\n"
        "JAX port short (their port went C++ -> NumPy -> JAX, and the\n"
        "brevity is credited to the NumPy-like syntax, 3.3)."
    )
    return table.render() + "\n" + note, rows


def fig3_loc_per_kernel() -> Tuple[str, Dict[str, Dict[str, int]]]:
    """Fig 3: lines of code per kernel per implementation."""
    per = {impl: loc_per_kernel(impl) for impl in _IMPLEMENTATIONS}
    table = Table(
        ["kernel"] + list(_IMPLEMENTATIONS),
        title="Fig 3 - lines of code per kernel",
    )
    for name in KERNEL_NAMES:
        table.add_row([name] + [per[impl][name] for impl in _IMPLEMENTATIONS])
    return table.render(), per


def fig4_process_sweep(mps_enabled: bool = True) -> Tuple[str, list]:
    """Fig 4: runtime vs process count (medium problem, one node)."""
    sweep = process_sweep(mps_enabled=mps_enabled)
    by_backend: Dict[Backend, Dict[int, Optional[float]]] = {}
    for pt in sweep:
        by_backend.setdefault(pt.backend, {})[pt.n_procs] = pt.runtime_s
    table = Table(
        ["processes", "CPU", "JAX", "JAX speedup", "OMP target", "OMP speedup"],
        title="Fig 4 - runtime vs process count (medium, 1 node)"
        + ("" if mps_enabled else " [MPS OFF]"),
    )
    procs = sorted(by_backend[Backend.CPU])
    for p in procs:
        cpu = by_backend[Backend.CPU][p]
        jax = by_backend[Backend.JAX][p]
        omp = by_backend[Backend.OMP][p]
        table.add_row(
            [
                p,
                format_seconds(cpu),
                "OOM" if jax is None else format_seconds(jax),
                None if jax is None else cpu / jax,
                "OOM" if omp is None else format_seconds(omp),
                None if omp is None else cpu / omp,
            ]
        )
    return table.render(), sweep


def fig5_full_benchmark() -> Tuple[str, Dict[Backend, float]]:
    """Fig 5: the large problem on 8 nodes, plus the Amdahl decomposition."""
    times = full_benchmark_runtimes()
    table = Table(
        ["implementation", "runtime", "speedup vs CPU"],
        title="Fig 5 - full benchmark (large, 8 nodes x 16 procs x 4 threads)",
    )
    cpu = times[Backend.CPU]
    labels = {
        Backend.CPU: "OpenMP CPU (baseline)",
        Backend.JAX: "JAX (GPU)",
        Backend.OMP: "OpenMP Target Offload (GPU)",
        Backend.JAX_CPU_BACKEND: "JAX forced CPU backend (text, not plotted)",
    }
    for backend in (Backend.CPU, Backend.JAX, Backend.OMP, Backend.JAX_CPU_BACKEND):
        t = times[backend]
        table.add_row([labels[backend], format_seconds(t), cpu / t])
    ported = CPU_MODEL["ported_seconds"]
    decomposition = (
        f"Amdahl decomposition at the reference configuration: ported kernels "
        f"{format_seconds(ported)} of {format_seconds(cpu / 1.25)} per medium-"
        f"node-volume -> ideal-GPU ceiling ~{cpu / 1.25 / (cpu / 1.25 - ported):.1f}x "
        f"(paper: 'bounded by Amdahl's law to about 3x')"
    )
    return table.render() + "\n" + decomposition, times


def fig6_per_kernel() -> Tuple[str, Dict[str, Dict[str, float]]]:
    """Fig 6: per-kernel totals (medium, 16 procs) for the 3 backends."""
    cpu = per_kernel_times(Backend.CPU)
    jax = per_kernel_times(Backend.JAX)
    omp = per_kernel_times(Backend.OMP)
    table = Table(
        ["operation", "CPU", "JAX", "JAX speedup", "OMP", "OMP speedup"],
        title="Fig 6 - total runtime per kernel (medium, 16 procs)",
    )
    for name in BENCHMARK_KERNELS:
        table.add_row(
            [
                name,
                format_seconds(cpu[name]),
                format_seconds(jax[name]),
                cpu[name] / jax[name],
                format_seconds(omp[name]),
                cpu[name] / omp[name],
            ]
        )
    for op in sorted(k for k in jax if k.startswith("accel_data")):
        table.add_row([op, None, format_seconds(jax[op]), None, format_seconds(omp[op]), None])
    return table.render(), {"cpu": cpu, "jax": jax, "omp": omp}
