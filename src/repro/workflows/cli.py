"""Command-line interface: ``repro-bench``.

Subcommands::

    repro-bench figures [--out DIR]     regenerate every paper figure table
    repro-bench run SIZE BACKEND        run the live benchmark
    repro-bench trace SIZE BACKEND      run it traced; export timeline + metrics
    repro-bench faults SIZE BACKEND     run under an injected fault plan and
                                        verify recovery reproduces the maps
    repro-bench sweep [--no-mps]        the Fig 4 process sweep
    repro-bench loc                     the LoC study (Figs 2-3)
    repro-bench kernels                 list kernels and implementations

Any unexpected failure exits nonzero with the error on stderr.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .. import obs
from ..accel import SimulatedDevice
from ..core import ImplementationType, MovementPolicy
from ..core.dispatch import kernel_registry
from ..ompshim import OmpTargetRuntime
from ..utils.table import Table, format_seconds
from .report import (
    fig2_loc_total,
    fig3_loc_per_kernel,
    fig4_process_sweep,
    fig5_full_benchmark,
    fig6_per_kernel,
)
from ..resilience.plans import plan_names
from .satellite import SIZES, run_fault_injection_benchmark, run_satellite_benchmark

__all__ = ["main", "build_parser"]

_BACKENDS = {
    "python": ImplementationType.PYTHON,
    "numpy": ImplementationType.NUMPY,
    "jax": ImplementationType.JAX,
    "omp_target": ImplementationType.OMP_TARGET,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduction of 'High-level GPU code: a case study "
        "examining JAX and OpenMP' (SC-W 2023).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate every paper figure table")
    p_fig.add_argument("--out", type=Path, default=None, help="also write tables here")

    p_run = sub.add_parser("run", help="run the live benchmark")
    p_run.add_argument(
        "size", choices=[s for s in SIZES if not s.startswith("paper")]
    )
    p_run.add_argument("backend", choices=sorted(_BACKENDS))
    p_run.add_argument(
        "--naive", action="store_true", help="per-kernel transfers instead of residency"
    )
    p_run.add_argument("--no-mapmaking", action="store_true")
    p_run.add_argument(
        "--seed", type=int, default=0, help="simulation realization seed"
    )

    p_trace = sub.add_parser(
        "trace",
        help="run the benchmark with structured tracing; write a Chrome "
        "trace-event JSON (chrome://tracing / Perfetto) and a per-kernel "
        "metrics CSV",
    )
    p_trace.add_argument(
        "size", choices=[s for s in SIZES if not s.startswith("paper")]
    )
    p_trace.add_argument("backend", choices=sorted(_BACKENDS))
    p_trace.add_argument(
        "--out", type=Path, default=Path("trace_out"), help="output directory"
    )
    p_trace.add_argument(
        "--naive", action="store_true", help="per-kernel transfers instead of residency"
    )
    p_trace.add_argument("--no-mapmaking", action="store_true")
    p_trace.add_argument(
        "--seed", type=int, default=0, help="simulation realization seed"
    )

    p_faults = sub.add_parser(
        "faults",
        help="run fault-free then under an injected fault plan; print a "
        "recovery report and verify the maps are bitwise identical "
        "(exits nonzero when they are not)",
    )
    p_faults.add_argument(
        "size", choices=[s for s in SIZES if not s.startswith("paper")]
    )
    p_faults.add_argument("backend", choices=sorted(_BACKENDS))
    p_faults.add_argument(
        "--plan",
        default="oom-then-recover",
        choices=plan_names(),
        help="named fault plan to inject",
    )
    p_faults.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (exact replay)"
    )
    p_faults.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also export the faulted run's trace + metrics here",
    )
    p_faults.add_argument("--no-mapmaking", action="store_true")

    p_sweep = sub.add_parser("sweep", help="the Fig 4 process sweep")
    p_sweep.add_argument("--no-mps", action="store_true")

    sub.add_parser("loc", help="the lines-of-code study (Figs 2-3)")
    sub.add_parser("kernels", help="list kernels and implementations")
    return parser


def _cmd_figures(out: Optional[Path]) -> int:
    figures = {
        "fig2_loc_total": fig2_loc_total,
        "fig3_loc_per_kernel": fig3_loc_per_kernel,
        "fig4_process_sweep": fig4_process_sweep,
        "fig5_full_benchmark": fig5_full_benchmark,
        "fig6_per_kernel": fig6_per_kernel,
    }
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
    for name, fn in figures.items():
        text = fn()[0]
        print(text)
        print()
        if out is not None:
            (out / f"{name}.txt").write_text(text + "\n")
    return 0


def _cmd_run(
    size_name: str,
    backend_name: str,
    naive: bool,
    no_mapmaking: bool,
    seed: int = 0,
) -> int:
    size = SIZES[size_name]
    impl = _BACKENDS[backend_name]
    accel = None
    if impl in (ImplementationType.JAX, ImplementationType.OMP_TARGET):
        accel = OmpTargetRuntime(SimulatedDevice())
    policy = MovementPolicy.NAIVE if naive else MovementPolicy.HYBRID

    result = run_satellite_benchmark(
        size,
        impl,
        accel=accel,
        policy=policy,
        mapmaking=not no_mapmaking,
        realization=seed,
    )
    table = Table(["measure", "value"], title=f"{size_name} / {backend_name}")
    table.add_row(["wall time", format_seconds(result["wall_seconds"])])
    if not no_mapmaking:
        table.add_row(["map-maker iterations", result["mapmaker_iterations"]])
    if accel is not None:
        table.add_row(["virtual device time", format_seconds(result["virtual_seconds"])])
        table.add_row(["kernel launches", result["kernels_launched"]])
    print(table.render())
    return 0


def _cmd_trace(
    size_name: str,
    backend_name: str,
    out: Path,
    naive: bool,
    no_mapmaking: bool,
    seed: int = 0,
) -> int:
    size = SIZES[size_name]
    impl = _BACKENDS[backend_name]
    accel = None
    if impl in (ImplementationType.JAX, ImplementationType.OMP_TARGET):
        accel = OmpTargetRuntime(SimulatedDevice())
    policy = MovementPolicy.NAIVE if naive else MovementPolicy.HYBRID

    tracer = obs.Tracer()
    with obs.tracing(tracer):
        result = run_satellite_benchmark(
            size,
            impl,
            accel=accel,
            policy=policy,
            mapmaking=not no_mapmaking,
            realization=seed,
        )

    out.mkdir(parents=True, exist_ok=True)
    stem = f"{size_name}_{backend_name}"
    trace_path = obs.write_chrome_trace(tracer, out / f"trace_{stem}.json")
    csv_path = out / f"kernels_{stem}.csv"
    obs.write_kernel_metrics_csv(tracer, csv_path)

    print(obs.render_summary(tracer, title=f"{size_name} / {backend_name}"))
    print()
    table = Table(["measure", "value"], title="run")
    table.add_row(["wall time", format_seconds(result["wall_seconds"])])
    if accel is not None:
        table.add_row(["virtual device time", format_seconds(result["virtual_seconds"])])
        table.add_row(["kernel launches", result["kernels_launched"]])
    print(table.render())
    print()
    print(f"chrome trace:   {trace_path}  (load in chrome://tracing or Perfetto)")
    print(f"kernel metrics: {csv_path}  (merge with merge_timing_csv)")
    return 0


def _cmd_faults(
    size_name: str,
    backend_name: str,
    plan_name: str,
    seed: int,
    out: Optional[Path],
    no_mapmaking: bool,
) -> int:
    size = SIZES[size_name]
    impl = _BACKENDS[backend_name]

    tracer = obs.Tracer() if out is not None else None
    report = run_fault_injection_benchmark(
        size,
        impl,
        plan_name=plan_name,
        seed=seed,
        mapmaking=not no_mapmaking,
        tracer=tracer,
    )

    table = Table(
        ["measure", "value"],
        title=f"recovery report: {size_name} / {backend_name} / {plan_name}",
    )
    table.add_row(["fault plan", f"{report['plan']} (seed {report['seed']})"])
    counters = report["counters"]
    table.add_row(["faults injected", counters.get("faults_injected", 0)])
    for fired in report["faults"]:
        table.add_row(
            ["  fault", f"{fired['kind']} at {fired['site']} call #{fired['call']}"]
        )
    for label, key in [
        ("retries", "retries"),
        ("fallbacks", "fallbacks"),
        ("evictions", "evictions"),
        ("host syncs", "host_syncs"),
        ("device recoveries", "device_recoveries"),
        ("checkpoints", "checkpoints"),
    ]:
        if counters.get(key):
            table.add_row([label, counters[key]])
    for name, state in report["breakers"].items():
        table.add_row([f"breaker {name}", state])
    for name, cmp in report["maps"].items():
        table.add_row(
            [
                f"{name} vs fault-free",
                "bitwise identical"
                if cmp["identical"]
                else f"DIFFERS (max abs diff {cmp['max_abs_diff']:.3e})",
            ]
        )
        table.add_row([f"{name} crc32", f"{cmp['crc32_faulted']:#010x}"])
    print(table.render())

    if tracer is not None:
        out.mkdir(parents=True, exist_ok=True)
        stem = f"{size_name}_{backend_name}_{plan_name}"
        trace_path = obs.write_chrome_trace(tracer, out / f"trace_{stem}.json")
        print()
        print(f"faulted-run trace: {trace_path}")

    if not report["all_identical"]:
        print(
            "error: recovery did not reproduce the fault-free maps",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_sweep(no_mps: bool) -> int:
    print(fig4_process_sweep(mps_enabled=not no_mps)[0])
    return 0


def _cmd_loc() -> int:
    print(fig2_loc_total()[0])
    print()
    print(fig3_loc_per_kernel()[0])
    return 0


def _cmd_kernels() -> int:
    from .. import kernels as _k  # noqa: F401  (populate the registry)

    table = Table(["kernel", "implementations"], title="registered kernels")
    for name in kernel_registry.kernels():
        impls = ", ".join(i.value for i in kernel_registry.implementations(name))
        table.add_row([name, impls])
    print(table.render())
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "figures":
        return _cmd_figures(args.out)
    if args.command == "run":
        return _cmd_run(
            args.size, args.backend, args.naive, args.no_mapmaking, args.seed
        )
    if args.command == "trace":
        return _cmd_trace(
            args.size, args.backend, args.out, args.naive, args.no_mapmaking, args.seed
        )
    if args.command == "faults":
        return _cmd_faults(
            args.size, args.backend, args.plan, args.seed, args.out, args.no_mapmaking
        )
    if args.command == "sweep":
        return _cmd_sweep(args.no_mps)
    if args.command == "loc":
        return _cmd_loc()
    if args.command == "kernels":
        return _cmd_kernels()
    raise AssertionError("unreachable")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except Exception as exc:  # argparse exits via SystemExit before this
        print(f"repro-bench: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
