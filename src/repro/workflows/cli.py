"""Command-line interface: ``repro-bench``.

Subcommands::

    repro-bench figures [--out DIR]     regenerate every paper figure table
    repro-bench run SIZE BACKEND        run the live benchmark
    repro-bench trace SIZE BACKEND      run it traced; export timeline + metrics
    repro-bench faults SIZE BACKEND     run under an injected fault plan and
                                        verify recovery reproduces the maps
    repro-bench perf SIZE BACKEND       measured wall-clock benchmark: the
                                        multiprocess workflow vs its 1-proc
                                        baseline, per-kernel python-vs-numpy
                                        microbenchmarks, and the modeled
                                        runtime, appended to BENCH_<date>.json
    repro-bench sweep [--no-mps]        the Fig 4 process sweep (modeled) plus
                                        the NAIVE/HYBRID/COMPILED data-movement
                                        comparison; --live adds measured
                                        wall-clock points and records the
                                        comparison in BENCH_<date>.json
    repro-bench plan SIZE BACKEND       print the compiled pipeline plan
                                        (elided transfers, fused groups,
                                        overlap windows) and verify the
                                        compiled run is bitwise identical
                                        to eager (exits nonzero if not)
    repro-bench loc                     the LoC study (Figs 2-3)
    repro-bench kernels                 list kernels and implementations
    repro-bench serve --smoke           end-to-end serving-plane drill:
                                        broker + 2 node processes + 4
                                        concurrent clients, one injected
                                        node crash; exits nonzero on any
                                        byte mismatch, missed coalesce,
                                        or leaked process/shm segment
    repro-bench chaos [--smoke]         seeded chaos soak: randomized
                                        fault schedules across registered
                                        sites; asserts bitwise map parity,
                                        zero leaks, bounded recovery
                                        counters
    repro-bench ingest --smoke          out-of-core ingest drill: spill to
                                        a crash-consistent store under a
                                        torn-write plan, stream back
                                        window-by-window under a host-RSS
                                        budget (eager, compiled, elastic),
                                        replay bit rot; exits nonzero
                                        unless every leg is bitwise
                                        identical to its in-memory oracle

Any unexpected failure exits nonzero with the error on stderr.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .. import obs
from ..accel import SimulatedDevice
from ..core import ImplementationType, MovementPolicy
from ..core.dispatch import kernel_registry
from ..ompshim import OmpTargetRuntime
from ..utils.table import Table, format_seconds
from .report import (
    fig2_loc_total,
    fig3_loc_per_kernel,
    fig4_process_sweep,
    fig5_full_benchmark,
    fig6_per_kernel,
)
from ..resilience.plans import plan_names
from .satellite import SIZES, run_fault_injection_benchmark, run_satellite_benchmark

__all__ = ["main", "build_parser"]

_BACKENDS = {
    "python": ImplementationType.PYTHON,
    "numpy": ImplementationType.NUMPY,
    "jax": ImplementationType.JAX,
    "omp_target": ImplementationType.OMP_TARGET,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduction of 'High-level GPU code: a case study "
        "examining JAX and OpenMP' (SC-W 2023).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate every paper figure table")
    p_fig.add_argument("--out", type=Path, default=None, help="also write tables here")

    p_run = sub.add_parser("run", help="run the live benchmark")
    p_run.add_argument(
        "size", choices=[s for s in SIZES if not s.startswith("paper")]
    )
    p_run.add_argument("backend", choices=sorted(_BACKENDS))
    p_run.add_argument(
        "--naive", action="store_true", help="per-kernel transfers instead of residency"
    )
    p_run.add_argument("--no-mapmaking", action="store_true")
    p_run.add_argument(
        "--seed", type=int, default=0, help="simulation realization seed"
    )

    p_trace = sub.add_parser(
        "trace",
        help="run the benchmark with structured tracing; write a Chrome "
        "trace-event JSON (chrome://tracing / Perfetto) and a per-kernel "
        "metrics CSV",
    )
    p_trace.add_argument(
        "size", choices=[s for s in SIZES if not s.startswith("paper")]
    )
    p_trace.add_argument("backend", choices=sorted(_BACKENDS))
    p_trace.add_argument(
        "--out", type=Path, default=Path("trace_out"), help="output directory"
    )
    p_trace.add_argument(
        "--naive", action="store_true", help="per-kernel transfers instead of residency"
    )
    p_trace.add_argument("--no-mapmaking", action="store_true")
    p_trace.add_argument(
        "--seed", type=int, default=0, help="simulation realization seed"
    )

    p_faults = sub.add_parser(
        "faults",
        help="run fault-free then under an injected fault plan; print a "
        "recovery report and verify the maps are bitwise identical "
        "(exits nonzero when they are not)",
    )
    p_faults.add_argument(
        "size", choices=[s for s in SIZES if not s.startswith("paper")]
    )
    p_faults.add_argument("backend", choices=sorted(_BACKENDS))
    p_faults.add_argument(
        "--plan",
        default="oom-then-recover",
        choices=plan_names(),
        help="named fault plan to inject",
    )
    p_faults.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (exact replay)"
    )
    p_faults.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also export the faulted run's trace + metrics here",
    )
    p_faults.add_argument("--no-mapmaking", action="store_true")

    p_perf = sub.add_parser(
        "perf",
        help="measured wall-clock benchmark: multiprocess workflow speedup "
        "+ per-kernel batching speedup + modeled runtime, recorded as JSON",
    )
    p_perf.add_argument(
        "size", choices=[s for s in SIZES if not s.startswith("paper")]
    )
    p_perf.add_argument("backend", choices=["python", "numpy"])
    p_perf.add_argument(
        "--procs", type=int, default=1, help="live worker processes"
    )
    p_perf.add_argument(
        "--json",
        type=Path,
        default=None,
        help="record results here (default BENCH_<date>.json; appends)",
    )
    p_perf.add_argument(
        "--seed", type=int, default=0, help="simulation realization seed"
    )
    p_perf.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the 1-process baseline run",
    )
    p_perf.add_argument(
        "--no-kernels",
        action="store_true",
        help="skip the per-kernel python-vs-numpy microbenchmarks",
    )

    p_plan = sub.add_parser(
        "plan",
        help="print the compiled pipeline plan (residency, elisions, fused "
        "groups, prefetch/drain windows) and check compiled-vs-eager "
        "bitwise parity; exits nonzero on mismatch",
    )
    p_plan.add_argument(
        "size", choices=[s for s in SIZES if not s.startswith("paper")]
    )
    p_plan.add_argument("backend", choices=["jax", "omp_target"])
    p_plan.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable plan document instead of the table",
    )
    p_plan.add_argument(
        "--seed", type=int, default=0, help="simulation realization seed"
    )

    p_sweep = sub.add_parser("sweep", help="the Fig 4 process sweep")
    p_sweep.add_argument("--no-mps", action="store_true")
    p_sweep.add_argument(
        "--live",
        action="store_true",
        help="also measure wall-clock points with live worker processes",
    )
    p_sweep.add_argument(
        "--live-size",
        default="medium",
        choices=[s for s in SIZES if not s.startswith("paper")],
        help="problem size for the live points",
    )
    p_sweep.add_argument(
        "--live-procs",
        default="1,2,4,8",
        help="comma-separated process counts for the live points",
    )

    sub.add_parser("loc", help="the lines-of-code study (Figs 2-3)")

    p_serve = sub.add_parser(
        "serve",
        help="the serving-plane smoke drill: broker + node processes + "
        "concurrent clients with coalescing, failover, and leak gates",
    )
    p_serve.add_argument(
        "--smoke",
        action="store_true",
        help="run the full multi-process drill (currently the only mode)",
    )
    p_serve.add_argument(
        "--size",
        default="tiny",
        choices=[s for s in SIZES if not s.startswith("paper")],
        help="problem size each pipeline run materialises",
    )
    p_serve.add_argument(
        "--clients", type=int, default=4, help="concurrent clients (>= 4)"
    )
    p_serve.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (exact replay)"
    )
    p_serve.add_argument(
        "--quiet", action="store_true", help="suppress per-round progress lines"
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded chaos soak: randomized fault schedules across the "
        "registered sites, asserting bitwise map parity vs the "
        "fault-free oracle, zero leaked processes/shm segments, and "
        "bounded recovery counters; exits nonzero on any violation",
    )
    p_chaos.add_argument(
        "--smoke",
        action="store_true",
        help="short CI soak (seeds 0-2 unless --seeds is given)",
    )
    p_chaos.add_argument(
        "--seeds",
        default=None,
        help="comma-separated seed list (default: 0-2 with --smoke, 0-9 "
        "otherwise); a failing CI seed replays with --seeds <seed>",
    )
    p_chaos.add_argument(
        "--json",
        type=Path,
        default=None,
        help="write the repro-chaos/1 report JSON here (the CI artifact)",
    )
    p_chaos.add_argument(
        "--quiet", action="store_true", help="suppress per-seed progress lines"
    )

    p_ingest = sub.add_parser(
        "ingest",
        help="the out-of-core ingest drill: spill the dataset into a "
        "crash-consistent chunked store under an injected torn-write "
        "plan, scrub, then stream the pipeline window-by-window under "
        "a host-RSS budget (eager + compiled plans, elastic workers) "
        "with a bit-rot replay; every leg is parity-gated bitwise "
        "against its in-memory oracle and any mismatch exits nonzero",
    )
    p_ingest.add_argument(
        "--smoke",
        action="store_true",
        help="run the full parity-gated drill (currently the only mode)",
    )
    p_ingest.add_argument(
        "--size",
        default="tiny",
        choices=[s for s in SIZES if not s.startswith("paper")],
        help="problem size to spill and stream",
    )
    p_ingest.add_argument(
        "--backend",
        default="numpy",
        choices=sorted(_BACKENDS),
        help="implementation for the eager and elastic legs",
    )
    p_ingest.add_argument(
        "--budget",
        type=int,
        default=None,
        help="host-RSS budget in bytes for streamed windows (default: a "
        "quarter of one observation's stored bytes)",
    )
    p_ingest.add_argument(
        "--procs",
        default="1,2",
        help="comma-separated elastic worker counts (default 1,2)",
    )
    p_ingest.add_argument(
        "--no-compiled", action="store_true", help="skip the compiled-plan leg"
    )
    p_ingest.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the torn-write and bit-rot fault replays",
    )
    p_ingest.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (exact replay)"
    )
    p_ingest.add_argument(
        "--json",
        type=Path,
        default=None,
        help="write the repro-ingest/1 report JSON here (the CI artifact)",
    )

    p_kernels = sub.add_parser(
        "kernels",
        help="kernel coverage table: implementations, specs, fallback order; "
        "exits nonzero when a kernel is missing an implementation without "
        "a spec-level waiver",
    )
    p_kernels.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable coverage document instead of a table",
    )

    p_mb = sub.add_parser(
        "megabatch",
        help="stacked-launch (megabatch) benchmark: eager vs compiled vs "
        "megabatch parity and launch reduction; exits nonzero on parity "
        "failure, a missing batching rule, or no launch reduction",
    )
    p_mb.add_argument(
        "--smoke",
        action="store_true",
        help="small problem, CI-friendly runtime",
    )
    p_mb.add_argument(
        "--size",
        choices=sorted(SIZES),
        default="small",
        help="problem size (ignored with --smoke, which uses tiny)",
    )
    p_mb.add_argument(
        "--backend",
        choices=["jax", "omp_target"],
        default="omp_target",
        help="accelerated backend to measure",
    )
    p_mb.add_argument(
        "--json",
        type=Path,
        default=None,
        help="write the repro-megabatch/1 report JSON here (the CI artifact)",
    )
    return parser


def _cmd_figures(out: Optional[Path]) -> int:
    figures = {
        "fig2_loc_total": fig2_loc_total,
        "fig3_loc_per_kernel": fig3_loc_per_kernel,
        "fig4_process_sweep": fig4_process_sweep,
        "fig5_full_benchmark": fig5_full_benchmark,
        "fig6_per_kernel": fig6_per_kernel,
    }
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
    for name, fn in figures.items():
        text = fn()[0]
        print(text)
        print()
        if out is not None:
            (out / f"{name}.txt").write_text(text + "\n")
    return 0


def _cmd_run(
    size_name: str,
    backend_name: str,
    naive: bool,
    no_mapmaking: bool,
    seed: int = 0,
) -> int:
    size = SIZES[size_name]
    impl = _BACKENDS[backend_name]
    accel = None
    if impl in (ImplementationType.JAX, ImplementationType.OMP_TARGET):
        accel = OmpTargetRuntime(SimulatedDevice())
    policy = MovementPolicy.NAIVE if naive else MovementPolicy.HYBRID

    result = run_satellite_benchmark(
        size,
        impl,
        accel=accel,
        policy=policy,
        mapmaking=not no_mapmaking,
        realization=seed,
    )
    table = Table(["measure", "value"], title=f"{size_name} / {backend_name}")
    table.add_row(["wall time", format_seconds(result["wall_seconds"])])
    if not no_mapmaking:
        table.add_row(["map-maker iterations", result["mapmaker_iterations"]])
    if accel is not None:
        table.add_row(["virtual device time", format_seconds(result["virtual_seconds"])])
        table.add_row(["kernel launches", result["kernels_launched"]])
    print(table.render())
    return 0


def _cmd_trace(
    size_name: str,
    backend_name: str,
    out: Path,
    naive: bool,
    no_mapmaking: bool,
    seed: int = 0,
) -> int:
    size = SIZES[size_name]
    impl = _BACKENDS[backend_name]
    accel = None
    if impl in (ImplementationType.JAX, ImplementationType.OMP_TARGET):
        accel = OmpTargetRuntime(SimulatedDevice())
    policy = MovementPolicy.NAIVE if naive else MovementPolicy.HYBRID

    tracer = obs.Tracer()
    with obs.tracing(tracer):
        result = run_satellite_benchmark(
            size,
            impl,
            accel=accel,
            policy=policy,
            mapmaking=not no_mapmaking,
            realization=seed,
        )

    out.mkdir(parents=True, exist_ok=True)
    stem = f"{size_name}_{backend_name}"
    trace_path = obs.write_chrome_trace(tracer, out / f"trace_{stem}.json")
    csv_path = out / f"kernels_{stem}.csv"
    obs.write_kernel_metrics_csv(tracer, csv_path)

    print(obs.render_summary(tracer, title=f"{size_name} / {backend_name}"))
    print()
    table = Table(["measure", "value"], title="run")
    table.add_row(["wall time", format_seconds(result["wall_seconds"])])
    if accel is not None:
        table.add_row(["virtual device time", format_seconds(result["virtual_seconds"])])
        table.add_row(["kernel launches", result["kernels_launched"]])
    print(table.render())
    print()
    print(f"chrome trace:   {trace_path}  (load in chrome://tracing or Perfetto)")
    print(f"kernel metrics: {csv_path}  (merge with merge_timing_csv)")
    return 0


def _cmd_faults(
    size_name: str,
    backend_name: str,
    plan_name: str,
    seed: int,
    out: Optional[Path],
    no_mapmaking: bool,
) -> int:
    size = SIZES[size_name]
    impl = _BACKENDS[backend_name]

    tracer = obs.Tracer() if out is not None else None
    report = run_fault_injection_benchmark(
        size,
        impl,
        plan_name=plan_name,
        seed=seed,
        mapmaking=not no_mapmaking,
        tracer=tracer,
    )

    table = Table(
        ["measure", "value"],
        title=f"recovery report: {size_name} / {backend_name} / {plan_name}",
    )
    table.add_row(["fault plan", f"{report['plan']} (seed {report['seed']})"])
    counters = report["counters"]
    table.add_row(["faults injected", counters.get("faults_injected", 0)])
    # The fired-fault timeline, in global firing order: with it, a failed
    # CI plan run is replayable (plan + seed) and diagnosable (which kind
    # fired at which site call) from the report alone.
    for fired in report["faults"]:
        table.add_row(
            [
                f"  fault #{fired.get('seq', '?')}",
                f"{fired['kind']} at {fired['site']} call #{fired['call']}",
            ]
        )
    for label, key in [
        ("retries", "retries"),
        ("fallbacks", "fallbacks"),
        ("evictions", "evictions"),
        ("host syncs", "host_syncs"),
        ("device recoveries", "device_recoveries"),
        ("worker recoveries", "worker_recoveries"),
        ("worker respawns", "worker_respawns"),
        ("steals", "steals"),
        ("hedges", "hedges"),
        ("lease expiries", "lease_expiries"),
        ("checkpoints", "checkpoints"),
    ]:
        if counters.get(key):
            table.add_row([label, counters[key]])
    for name, state in report["breakers"].items():
        table.add_row([f"breaker {name}", state])
    if report.get("error"):
        table.add_row(["faulted run", f"FAILED: {report['error']}"])
    for name, cmp in report["maps"].items():
        table.add_row(
            [
                f"{name} vs fault-free",
                "bitwise identical"
                if cmp["identical"]
                else f"DIFFERS (max abs diff {cmp['max_abs_diff']:.3e})",
            ]
        )
        table.add_row([f"{name} crc32", f"{cmp['crc32_faulted']:#010x}"])
    print(table.render())

    if tracer is not None:
        out.mkdir(parents=True, exist_ok=True)
        stem = f"{size_name}_{backend_name}_{plan_name}"
        trace_path = obs.write_chrome_trace(tracer, out / f"trace_{stem}.json")
        print()
        print(f"faulted-run trace: {trace_path}")

    if not report["all_identical"]:
        print(
            "error: recovery did not reproduce the fault-free maps",
            file=sys.stderr,
        )
        return 1
    return 0


def _host_info() -> dict:
    import os
    import platform

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:
        cpus = os.cpu_count() or 1
    return {
        "cpus": cpus,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _cmd_perf(
    size_name: str,
    backend_name: str,
    procs: int,
    json_path: Optional[Path],
    seed: int,
    no_baseline: bool,
    no_kernels: bool,
) -> int:
    import datetime
    import json

    from ..perfmodel import cpu_runtime
    from .microbench import microbench_kernels
    from .satellite import run_parallel_satellite_benchmark

    if procs < 1:
        print("repro-bench: error: --procs must be >= 1", file=sys.stderr)
        return 1
    size = SIZES[size_name]
    impl = _BACKENDS[backend_name]
    host = _host_info()

    run = run_parallel_satellite_benchmark(
        size, impl, n_procs=procs, realization=seed
    )
    baseline_seconds = None
    if procs > 1 and not no_baseline:
        baseline = run_parallel_satellite_benchmark(
            size, impl, n_procs=1, realization=seed
        )
        baseline_seconds = baseline["wall_seconds"]
    elif procs == 1:
        baseline_seconds = run["wall_seconds"]
    measured_speedup = (
        baseline_seconds / run["wall_seconds"] if baseline_seconds else None
    )
    modeled_seconds = cpu_runtime(procs, size.total_bytes / 1e12)

    workflow = {
        "wall_seconds": run["wall_seconds"],
        "baseline_1proc_seconds": baseline_seconds,
        "measured_speedup": measured_speedup,
        "modeled_seconds": modeled_seconds,
        "n_workers": run["n_workers"],
        "world": run["world"],
        "start_method": run["start_method"],
        "worker_seconds": {str(k): v for k, v in run["worker_seconds"].items()},
    }

    kernels = []
    if not no_kernels:
        kernels = microbench_kernels(
            n_det=size.n_detectors, n_samp=min(size.n_samples, 4096)
        )

    table = Table(
        ["measure", "value"], title=f"perf: {size_name} / {backend_name} x{procs}"
    )
    table.add_row(["host CPUs", host["cpus"]])
    table.add_row(["measured wall", format_seconds(run["wall_seconds"])])
    if baseline_seconds is not None and procs > 1:
        table.add_row(["1-process baseline", format_seconds(baseline_seconds)])
        table.add_row(["measured speedup", f"{measured_speedup:.2f}x"])
    table.add_row(["modeled (perfmodel)", format_seconds(modeled_seconds)])
    table.add_row(["workers", f"{run['n_workers']} ({run['start_method']})"])
    print(table.render())

    if kernels:
        ktable = Table(
            ["kernel", "python [s]", "numpy [s]", "speedup"],
            title="per-kernel batching speedup (python -> numpy)",
        )
        for row in kernels:
            ktable.add_row(
                [
                    row["kernel"],
                    f"{row['python_seconds']:.4g}",
                    f"{row['numpy_seconds']:.4g}",
                    f"{row['speedup']:.1f}x",
                ]
            )
        print()
        print(ktable.render())
        worst = min(row["speedup"] for row in kernels)
        print(f"\nminimum kernel speedup: {worst:.1f}x")

    today = datetime.date.today().isoformat()
    path = json_path if json_path is not None else Path(f"BENCH_{today}.json")
    doc = {"schema": "repro-perf/1", "host": host, "runs": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if existing.get("schema") == "repro-perf/1":
                doc = existing
                doc["host"] = host
        except (ValueError, OSError):
            pass
    doc["runs"].append(
        {
            "date": today,
            "size": size_name,
            "backend": backend_name,
            "procs": procs,
            "seed": seed,
            "workflow": workflow,
            "kernels": kernels,
        }
    )
    path.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"\nrecorded: {path}")
    return 0


def _cmd_plan(size_name: str, backend_name: str, as_json: bool, seed: int) -> int:
    import numpy as np

    from ..compilepipe import lower_workflow, build_plan, plan_report, render_plan
    from ..core.pipeline import LoopOrder
    from .satellite import make_satellite_data, satellite_processing_pipeline

    size = SIZES[size_name]
    impl = _BACKENDS[backend_name]

    # Static plan over the real dataset (the planner never executes).
    data = make_satellite_data(size, realization=seed)
    pipe = satellite_processing_pipeline(size.nside, implementation=impl)
    units = (
        pipe.observation_units(data)
        if pipe.order is LoopOrder.OBSERVATION_MAJOR
        else [data]
    )
    plan = build_plan(lower_workflow(pipe.operators, units))

    # Parity gate: eager and compiled runs over fresh data must agree bit
    # for bit on every product.
    def _run(plan_mode: str):
        d = make_satellite_data(size, realization=seed)
        accel = OmpTargetRuntime(SimulatedDevice())
        p = satellite_processing_pipeline(size.nside, implementation=impl)
        p.plan = plan_mode
        p.exec(d, use_accel=True, accel=accel)
        return d

    de, dc = _run("eager"), _run("compiled")
    mismatches = []
    if not np.array_equal(de["zmap"], dc["zmap"]):
        mismatches.append("zmap")
    for ob_e, ob_c in zip(de.obs, dc.obs):
        for k in ob_e.detdata:
            if not np.array_equal(ob_e.detdata[k], ob_c.detdata[k]):
                mismatches.append(f"{ob_e.name}.{k}")

    if as_json:
        import json

        doc = plan_report(plan)
        doc["schema"] = "repro-plan/1"
        doc["size"] = size_name
        doc["backend"] = backend_name
        doc["parity"] = {"identical": not mismatches, "mismatches": mismatches}
        print(json.dumps(doc, indent=1))
    else:
        print(render_plan(plan))
        print()
        print(
            "compiled-vs-eager parity: "
            + ("bitwise identical" if not mismatches else "MISMATCH")
        )
    if mismatches:
        print(
            "error: compiled run diverged from eager on: "
            + ", ".join(mismatches),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_sweep(
    no_mps: bool,
    live: bool = False,
    live_size: str = "medium",
    live_procs: str = "1,2,4,8",
) -> int:
    print(fig4_process_sweep(mps_enabled=not no_mps)[0])

    from .satellite import run_movement_comparison

    movement = run_movement_comparison(SIZES["medium_scaled"])
    mtable = Table(
        [
            "policy",
            "exposed transfer [s]",
            "saving vs naive",
            "H2D",
            "D2H",
            "launches",
        ],
        title="data movement: medium_scaled / omp_target "
        "(naive vs hybrid vs compiled vs megabatch)",
    )
    for mode in ("naive", "hybrid", "compiled", "megabatch"):
        e = movement["policies"][mode]
        saving = e.get("transfer_saving")
        mtable.add_row(
            [
                mode,
                f"{e['transfer_exposed_seconds']:.6f}",
                "-" if saving is None else f"{saving * 100:.1f}%",
                e["h2d_copies"],
                e["d2h_copies"],
                e["kernels_launched"],
            ]
        )
    comp = movement["policies"]["compiled"]
    mb = movement["policies"]["megabatch"]
    print()
    print(mtable.render())
    print(
        f"compiled plan: {comp['transfers_elided']:.0f} transfers elided, "
        f"{comp['fused_groups']:.0f} fused group(s) "
        f"({comp['launches_elided']:.0f} launches elided), "
        f"{comp['overlap_seconds'] * 1e3:.2f} ms of copies overlapped with "
        "compute"
    )
    print(
        f"megabatch plan: {mb['launches_elided']:.0f} launches elided, "
        f"{mb['launch_reduction']:.1f}x fewer launches than per-observation "
        "dispatch"
    )
    print(
        "maps bitwise identical across policies: "
        + ("yes" if movement["identical"] else "NO")
    )
    if not movement["identical"]:
        print(
            "error: movement policies disagree on the output maps",
            file=sys.stderr,
        )
        return 1

    if not live:
        return 0

    import datetime
    import json

    today = datetime.date.today().isoformat()
    bench_path = Path(f"BENCH_{today}.json")
    doc = {"schema": "repro-perf/1", "host": _host_info(), "runs": []}
    if bench_path.exists():
        try:
            existing = json.loads(bench_path.read_text())
            if existing.get("schema") == "repro-perf/1":
                doc = existing
        except (ValueError, OSError):
            pass
    from ..accel.transfer import TransferModel
    from ..core.dispatch import use_implementation
    from ..perfmodel import estimate_movement

    with use_implementation(ImplementationType.OMP_TARGET):
        modeled = estimate_movement(movement["plan"], TransferModel())
    hyb_v = movement["policies"]["hybrid"]["virtual_seconds"]
    comp_v = movement["policies"]["compiled"]["virtual_seconds"]
    mb_v = movement["policies"]["megabatch"]["virtual_seconds"]
    doc["runs"].append(
        {
            "date": today,
            "kind": "pipeline_compiler",
            "size": "medium_scaled",
            "backend": "omp_target",
            "policies": {
                mode: {
                    k: v
                    for k, v in e.items()
                    if isinstance(v, (int, float, bool))
                }
                for mode, e in movement["policies"].items()
            },
            "identical": movement["identical"],
            "megabatch": {
                "launches_saved": movement["policies"]["megabatch"][
                    "launches_elided"
                ],
                "launch_reduction": movement["policies"]["megabatch"][
                    "launch_reduction"
                ],
                "wall_delta_vs_eager_s": hyb_v - mb_v,
                "wall_delta_vs_compiled_s": comp_v - mb_v,
                "modeled_launch_delta_vs_eager_s": (
                    modeled["hybrid"].launch_seconds
                    - modeled["megabatch"].launch_seconds
                ),
                "modeled_launch_delta_vs_compiled_s": (
                    modeled["compiled"].launch_seconds
                    - modeled["megabatch"].launch_seconds
                ),
            },
        }
    )
    bench_path.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"\nrecorded movement comparison: {bench_path}")

    from ..perfmodel import cpu_runtime
    from .satellite import run_parallel_satellite_benchmark

    size = SIZES[live_size]
    counts = sorted({int(p) for p in live_procs.split(",") if p.strip()})
    table = Table(
        ["processes", "measured [s]", "speedup vs 1", "modeled [s]"],
        title=f"Fig 4, measured: {live_size} / numpy on {_host_info()['cpus']} CPU(s)",
    )
    base = None
    for p in counts:
        run = run_parallel_satellite_benchmark(
            size, ImplementationType.NUMPY, n_procs=p
        )
        wall = run["wall_seconds"]
        if base is None:
            base = wall
        table.add_row(
            [
                p,
                f"{wall:.3f}",
                f"{base / wall:.2f}x",
                f"{cpu_runtime(p, size.total_bytes / 1e12):.3f}",
            ]
        )
    print()
    print(table.render())
    return 0


def _cmd_loc() -> int:
    print(fig2_loc_total()[0])
    print()
    print(fig3_loc_per_kernel()[0])
    return 0


def _kernel_inventory() -> list:
    """One coverage record per registered kernel, spec-aware."""
    from ..core.dispatch import fallback_chain
    from .. import kernels as _k  # noqa: F401  (populate the registry)

    records = []
    for name in kernel_registry.kernels():
        impls = [i.value for i in kernel_registry.implementations(name)]
        spec = kernel_registry.spec(name)
        waived = sorted(spec.waive_impls) if spec is not None else []
        missing = sorted(
            {i.value for i in ImplementationType} - set(impls) - set(waived)
        )
        chain = [
            i.value for i in fallback_chain(name, ImplementationType.JAX)
        ]
        mb_impls = [
            i.value for i in kernel_registry.megabatch_implementations(name)
        ]
        records.append(
            {
                "name": name,
                "implementations": impls,
                "spec": None
                if spec is None
                else {
                    "args": spec.arg_names(),
                    "outputs": spec.output_names(),
                    "interval_batched": spec.interval_batched,
                    "fallback_eligible": spec.fallback_eligible,
                    "parity": spec.parity,
                    "megabatch": spec.megabatch,
                },
                "waived": waived,
                "missing": missing,
                "fallback_order": chain,
                "megabatch": mb_impls,
                "complete": spec is not None and not missing,
            }
        )
    return records


def _batching_rule_coverage() -> dict:
    """jaxshim primitive -> has-vmap-rule map, with unwaived holes."""
    from ..jaxshim.primitives import BATCHING_WAIVERS, batching_coverage

    coverage = batching_coverage()
    return {
        "primitives": coverage,
        "waived": sorted(BATCHING_WAIVERS),
        "holes": sorted(
            n for n, ok in coverage.items() if not ok and n not in BATCHING_WAIVERS
        ),
    }


def _cmd_kernels(as_json: bool = False) -> int:
    records = _kernel_inventory()
    incomplete = [r["name"] for r in records if not r["complete"]]
    batching = _batching_rule_coverage()

    if as_json:
        import json

        doc = {
            "schema": "repro-kernels/1",
            "kernels": records,
            "batching_rules": batching,
        }
        print(json.dumps(doc, indent=1))
        return 1 if incomplete or batching["holes"] else 0

    impl_order = [i.value for i in ImplementationType]
    table = Table(
        ["kernel"]
        + impl_order
        + ["args", "batched", "megabatch", "fallback (from jax)"],
        title="kernel coverage (registry vs specs)",
    )
    for r in records:
        cells = [r["name"]]
        for impl in impl_order:
            if impl in r["implementations"]:
                cells.append("yes")
            elif impl in r["waived"]:
                cells.append("waived")
            else:
                cells.append("MISSING")
        spec = r["spec"]
        cells.append(len(spec["args"]) if spec else "no spec")
        cells.append("yes" if spec and spec["interval_batched"] else "no")
        cells.append("+".join(r["megabatch"]) or "-")
        cells.append(" -> ".join(r["fallback_order"]) or "-")
        table.add_row(cells)
    print(table.render())
    n_cov = sum(1 for ok in batching["primitives"].values() if ok)
    print(
        f"\n{len(records)} kernels, "
        f"{sum(1 for r in records if r['complete'])} complete; "
        f"vmap batching rules: {n_cov}/{len(batching['primitives'])} "
        f"primitives"
        + (f" ({len(batching['waived'])} waived)" if batching["waived"] else "")
    )
    failed = False
    if incomplete:
        print(
            "error: kernels missing implementations without a spec waiver: "
            + ", ".join(incomplete),
            file=sys.stderr,
        )
        failed = True
    if batching["holes"]:
        print(
            "error: primitives without vmap batching rules (unwaived): "
            + ", ".join(batching["holes"]),
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _cmd_megabatch(
    smoke: bool, size_name: str, backend_name: str, json_path: Optional[Path]
) -> int:
    """Eager vs compiled vs megabatch on one size: parity + launch savings."""
    import json

    from ..jaxshim.primitives import BATCHING_WAIVERS, batching_coverage
    from .satellite import run_movement_comparison

    size_name = "tiny" if smoke else size_name
    impl = _BACKENDS[backend_name]
    movement = run_movement_comparison(SIZES[size_name], implementation=impl)

    coverage = batching_coverage()
    holes = sorted(
        n for n, ok in coverage.items() if not ok and n not in BATCHING_WAIVERS
    )
    hybrid = movement["policies"]["hybrid"]
    compiled = movement["policies"]["compiled"]
    mb = movement["policies"]["megabatch"]

    doc = {
        "schema": "repro-megabatch/1",
        "mode": "smoke" if smoke else "full",
        "size": size_name,
        "backend": backend_name,
        "host": _host_info(),
        "identical": movement["identical"],
        "launch_reduction": mb["launch_reduction"],
        "launches": {
            "eager": hybrid["kernels_launched"],
            "compiled": compiled["kernels_launched"],
            "megabatch": mb["kernels_launched"],
            "elided": mb["launches_elided"],
        },
        "virtual_seconds": {
            mode: movement["policies"][mode]["virtual_seconds"]
            for mode in ("naive", "hybrid", "compiled", "megabatch")
        },
        "batching_rules": {
            "primitives": len(coverage),
            "covered": sum(1 for ok in coverage.values() if ok),
            "waived": sorted(BATCHING_WAIVERS),
            "holes": holes,
        },
    }
    if json_path is not None:
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(doc, indent=1) + "\n")

    table = Table(
        ["plan", "launches", "launches elided", "virtual [s]"],
        title=f"megabatch: {size_name} / {backend_name}",
    )
    for mode in ("hybrid", "compiled", "megabatch"):
        e = movement["policies"][mode]
        table.add_row(
            [
                mode if mode != "hybrid" else "eager (hybrid)",
                e["kernels_launched"],
                f"{e.get('launches_elided', 0):.0f}",
                f"{e['virtual_seconds']:.6f}",
            ]
        )
    print(table.render())
    print(
        f"\nlaunch reduction vs per-observation dispatch: "
        f"{mb['launch_reduction']:.1f}x; "
        f"batching rules: {doc['batching_rules']['covered']}/"
        f"{doc['batching_rules']['primitives']} primitives"
        + (f"; report: {json_path}" if json_path is not None else "")
    )
    print(
        "maps bitwise identical across plans: "
        + ("yes" if movement["identical"] else "NO")
    )

    failures = []
    if not movement["identical"]:
        failures.append("megabatch maps diverged from eager")
    if holes:
        failures.append(
            "primitives without batching rules (unwaived): " + ", ".join(holes)
        )
    if mb["launch_reduction"] <= 1.0:
        failures.append(
            f"no launch reduction ({mb['launch_reduction']:.2f}x)"
        )
    for msg in failures:
        print(f"error: {msg}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_chaos(
    smoke: bool, seeds_arg: Optional[str], json_path: Optional[Path], quiet: bool
) -> int:
    import json

    from .chaos import run_chaos_soak

    if seeds_arg:
        try:
            seeds = [int(s) for s in seeds_arg.split(",") if s.strip()]
        except ValueError:
            print(
                f"repro-bench: error: bad --seeds {seeds_arg!r} "
                "(want e.g. 0,1,2)",
                file=sys.stderr,
            )
            return 1
    else:
        seeds = list(range(3)) if smoke else list(range(10))
    if not seeds:
        print("repro-bench: error: no seeds to run", file=sys.stderr)
        return 1

    report = run_chaos_soak(seeds, verbose=not quiet)
    report["host"] = _host_info()
    report["mode"] = "smoke" if smoke else "soak"
    if json_path is not None:
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(report, indent=1) + "\n")

    table = Table(
        ["seed", "legs", "faults fired", "verdict"],
        title=f"chaos {'smoke' if smoke else 'soak'}: {len(seeds)} seed(s)",
    )
    for result in report["results"]:
        fired = sum(len(leg["fired"]) for leg in result["legs"])
        table.add_row(
            [
                result["seed"],
                "+".join(sorted(result["plan"])),
                fired,
                "ok" if result["ok"] else "; ".join(result["problems"]),
            ]
        )
    print(table.render())
    print(
        f"\n{sum(1 for r in report['results'] if r['ok'])}/{len(seeds)} seeds ok "
        f"in {report['seconds']:.1f}s"
        + (f"; report: {json_path}" if json_path is not None else "")
    )
    if not report["ok"]:
        bad = [str(r["seed"]) for r in report["results"] if not r["ok"]]
        print(
            "error: chaos invariants violated; replay with "
            f"`repro-bench chaos --seeds {','.join(bad)}`",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_ingest(
    size_name: str,
    backend_name: str,
    budget: Optional[int],
    procs_arg: str,
    no_compiled: bool,
    no_faults: bool,
    seed: int,
    json_path: Optional[Path],
) -> int:
    import json

    from .ingest import run_ingest_benchmark

    try:
        procs = sorted({int(p) for p in procs_arg.split(",") if p.strip()})
    except ValueError:
        print(
            f"repro-bench: error: bad --procs {procs_arg!r} (want e.g. 1,2)",
            file=sys.stderr,
        )
        return 1
    if not procs or any(p < 1 for p in procs):
        print("repro-bench: error: --procs wants counts >= 1", file=sys.stderr)
        return 1

    report = run_ingest_benchmark(
        size=size_name,
        implementation=_BACKENDS[backend_name],
        host_budget_bytes=budget,
        elastic_procs=procs,
        compiled=not no_compiled,
        faults=not no_faults,
        seed=seed,
    )
    if json_path is not None:
        doc = dict(report)
        doc["schema"] = "repro-ingest/1"
        doc["host"] = _host_info()
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(doc, indent=1) + "\n")

    def _verdict(ok: bool) -> str:
        return "bitwise identical" if ok else "DIFFERS"

    table = Table(
        ["measure", "value"],
        title=f"ingest smoke: {size_name} / {backend_name}",
    )
    table.add_row(["chunk samples", report["chunk_samples"]])
    table.add_row(["host budget", f"{report['host_budget_bytes']} bytes"])
    table.add_row(["stream windows", report["stream_windows"]])
    scrub = report["scrub"]
    table.add_row(
        [
            "open-time scrub",
            f"{scrub['chunks_checked']} chunk(s) checked, "
            f"{len(scrub['in_flight'])} in-flight, "
            f"{len(scrub['quarantined'])} quarantined",
        ]
    )
    if "torn_write" in report:
        tw = report["torn_write"]
        table.add_row(
            [
                "torn write during spill",
                f"{tw['faults_injected']} injected, "
                f"{tw['commit_retries']} commit retr"
                + ("y" if tw["commit_retries"] == 1 else "ies"),
            ]
        )
    table.add_row(["eager streamed vs in-memory", _verdict(report["eager_identical"])])
    if "bitrot" in report:
        br = report["bitrot"]
        table.add_row(
            [
                "bit-rot replay",
                f"{br['quarantined']} quarantined, {br['regenerated']} "
                f"regenerated; {_verdict(br['identical'])}",
            ]
        )
    if "compiled_identical" in report:
        table.add_row(
            ["compiled streamed vs in-memory", _verdict(report["compiled_identical"])]
        )
    for n_procs, leg in report["elastic"].items():
        table.add_row(
            [
                f"elastic x{n_procs} (window {leg['window_samples']})",
                _verdict(leg["identical"]),
            ]
        )
    print(table.render())
    if json_path is not None:
        print(f"\nreport: {json_path}")
    if not report["identical"]:
        print(
            "error: a streamed run diverged from its in-memory oracle",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(
    size_name: str, n_clients: int, seed: int, quiet: bool
) -> int:
    from ..serve import SmokeFailure, run_serve_smoke

    try:
        report = run_serve_smoke(
            size=size_name, n_clients=n_clients, seed=seed, verbose=not quiet
        )
    except SmokeFailure as exc:
        print(f"serve smoke FAILED: {exc}", file=sys.stderr)
        return 1

    broker = report["broker"]
    table = Table(
        ["measure", "value"], title=f"serve smoke: {size_name} x{n_clients} clients"
    )
    for nid, node in broker["nodes"].items():
        table.add_row(
            [
                f"node {nid}",
                f"breaker {node['breaker']}, {node['produces']} produce(s), "
                f"{node['failures']} failure(s)",
            ]
        )
    counters = broker["counters"]
    for label, key in [
        ("resolves", "resolves"),
        ("coalesced resolves", "coalesced_resolves"),
        ("node failures", "node_failures"),
        ("rejections", "rejections"),
    ]:
        if counters.get(key):
            table.add_row([label, counters[key]])
    table.add_row(["trace events", report["trace_events"]])
    table.add_row(["leaks", "none (processes + /dev/shm clean)"])
    print(table.render())
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "figures":
        return _cmd_figures(args.out)
    if args.command == "run":
        return _cmd_run(
            args.size, args.backend, args.naive, args.no_mapmaking, args.seed
        )
    if args.command == "trace":
        return _cmd_trace(
            args.size, args.backend, args.out, args.naive, args.no_mapmaking, args.seed
        )
    if args.command == "faults":
        return _cmd_faults(
            args.size, args.backend, args.plan, args.seed, args.out, args.no_mapmaking
        )
    if args.command == "perf":
        return _cmd_perf(
            args.size,
            args.backend,
            args.procs,
            args.json,
            args.seed,
            args.no_baseline,
            args.no_kernels,
        )
    if args.command == "plan":
        return _cmd_plan(args.size, args.backend, args.json, args.seed)
    if args.command == "sweep":
        return _cmd_sweep(args.no_mps, args.live, args.live_size, args.live_procs)
    if args.command == "loc":
        return _cmd_loc()
    if args.command == "serve":
        return _cmd_serve(args.size, args.clients, args.seed, args.quiet)
    if args.command == "chaos":
        return _cmd_chaos(args.smoke, args.seeds, args.json, args.quiet)
    if args.command == "ingest":
        return _cmd_ingest(
            args.size,
            args.backend,
            args.budget,
            args.procs,
            args.no_compiled,
            args.no_faults,
            args.seed,
            args.json,
        )
    if args.command == "kernels":
        return _cmd_kernels(args.json)
    if args.command == "megabatch":
        return _cmd_megabatch(args.smoke, args.size, args.backend, args.json)
    raise AssertionError("unreachable")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except Exception as exc:  # argparse exits via SystemExit before this
        print(f"repro-bench: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
