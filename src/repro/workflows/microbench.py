"""Per-kernel microbenchmarks and shared argument factories.

One place builds realistic kernel arguments at any problem size; two
places consume it:

* the bitwise parity suite (``tests/test_kernel_parity.py``) runs every
  batched ``numpy`` kernel against the ``python`` oracle over detector
  counts, flag masks, and degenerate interval lists;
* ``repro-bench perf`` times ``python`` vs ``numpy`` per kernel and
  reports the measured batching speedup.

The kernel set is not enumerated here: :func:`kernel_cases` iterates the
kernel registry and pairs every parity-eligible :class:`KernelSpec` with
its argument builder.  Output keys come from the spec's ``OUT``/``INOUT``
intents, and each builder's kwargs are checked against the spec's
argument names -- a kernel registered without coverage here, or a
builder drifting from its spec, fails loudly.

Factories return ``(kwargs, output_keys)`` with freshly allocated arrays
on every call, so in-place kernels cannot leak state between runs.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.dispatch import ImplementationType, KernelRegistry, kernel_registry
from ..math import qa

__all__ = ["kernel_cases", "run_kernel_case", "microbench_kernels"]

ArgsFactory = Callable[[], Tuple[Dict[str, object], List[str]]]


def make_intervals(n_samp: int, kind: str = "irregular") -> Tuple[np.ndarray, np.ndarray]:
    """Interval lists exercising the flattening logic.

    ``irregular``: uneven spans with gaps (the realistic case);
    ``full``: one span covering everything; ``empty``: no spans at all.
    """
    if kind == "empty":
        e = np.zeros(0, dtype=np.int64)
        return e, e
    if kind == "full":
        return np.array([0], dtype=np.int64), np.array([n_samp], dtype=np.int64)
    if n_samp < 8:
        return np.array([0], dtype=np.int64), np.array([n_samp], dtype=np.int64)
    q = n_samp // 8
    starts = np.array([0, 2 * q, 5 * q, n_samp - q // 2 - 1], dtype=np.int64)
    stops = np.array([q + q // 2, 4 * q, 6 * q + q // 2, n_samp], dtype=np.int64)
    return starts, stops


def _arg_builders(
    n_det: int,
    n_samp: int,
    nside: int,
    nnz: int,
    seed: int,
    intervals: str,
    with_flags: bool,
) -> Dict[str, Callable[[], Dict[str, object]]]:
    """kwargs builders per kernel name (outputs derive from the spec)."""
    starts, stops = make_intervals(n_samp, intervals)
    npix = 12 * nside * nside
    step = max(4, n_samp // 8)
    n_amp_det = (n_samp + step - 1) // step

    def rng(salt: int) -> np.random.Generator:
        return np.random.default_rng(seed + salt)

    def shared_flags(salt: int) -> Optional[np.ndarray]:
        if not with_flags:
            return None
        flags = np.zeros(n_samp, dtype=np.uint8)
        r = rng(salt)
        flags[r.choice(n_samp, max(1, n_samp // 8), replace=False)] |= 1
        flags[r.choice(n_samp, max(1, n_samp // 12), replace=False)] |= 2
        return flags

    def det_quats(salt: int) -> np.ndarray:
        r = rng(salt)
        return qa.from_angles(
            r.uniform(0.01, np.pi - 0.01, (n_det, n_samp)),
            r.uniform(-np.pi, np.pi, (n_det, n_samp)),
            r.uniform(-np.pi, np.pi, (n_det, n_samp)),
        )

    def pointing_detector() -> Dict[str, object]:
        r = rng(1)
        fp = qa.from_angles(
            r.uniform(0.0, 0.1, n_det),
            r.uniform(0, 1, n_det),
            r.uniform(0, 1, n_det),
        )
        bore = qa.from_angles(
            r.uniform(0.1, np.pi - 0.1, n_samp),
            r.uniform(-np.pi, np.pi, n_samp),
            np.zeros(n_samp),
        )
        return dict(
            fp_quats=fp,
            boresight=bore,
            quats_out=np.zeros((n_det, n_samp, 4)),
            starts=starts,
            stops=stops,
            shared_flags=shared_flags(2),
            mask=1 if with_flags else 0,
        )

    def stokes_weights_I() -> Dict[str, object]:
        return dict(
            weights_out=np.zeros((n_det, n_samp)),
            cal=1.25,
            starts=starts,
            stops=stops,
        )

    def stokes_weights_IQU() -> Dict[str, object]:
        r = rng(3)
        return dict(
            quats=det_quats(3),
            weights_out=np.zeros((n_det, n_samp, nnz)),
            hwp_angle=r.uniform(0, 2 * np.pi, n_samp),
            epsilon=r.uniform(0.0, 0.2, n_det),
            cal=1.1,
            starts=starts,
            stops=stops,
        )

    def pixels_healpix() -> Dict[str, object]:
        return dict(
            quats=det_quats(4),
            pixels_out=np.zeros((n_det, n_samp), dtype=np.int64),
            nside=nside,
            nest=True,
            starts=starts,
            stops=stops,
            shared_flags=shared_flags(5),
            mask=2 if with_flags else 0,
        )

    def pixels(salt: int) -> np.ndarray:
        r = rng(salt)
        # Few distinct pixels -> guaranteed scatter collisions.
        pix = r.integers(0, max(2, npix // 100), (n_det, n_samp))
        pix[r.random((n_det, n_samp)) < 0.02] = -1
        return pix

    def scan_map() -> Dict[str, object]:
        r = rng(6)
        return dict(
            map_data=r.normal(size=(npix, nnz)),
            pixels=pixels(6),
            weights=r.normal(size=(n_det, n_samp, nnz)),
            tod=r.normal(size=(n_det, n_samp)),
            starts=starts,
            stops=stops,
            data_scale=0.5,
            should_zero=False,
            should_subtract=False,
        )

    def noise_weight() -> Dict[str, object]:
        r = rng(7)
        return dict(
            tod=r.normal(size=(n_det, n_samp)),
            det_weights=r.uniform(0.5, 2.0, n_det),
            starts=starts,
            stops=stops,
        )

    def build_noise_weighted() -> Dict[str, object]:
        r = rng(8)
        return dict(
            zmap=np.zeros((npix, nnz)),
            pixels=pixels(8),
            weights=r.normal(size=(n_det, n_samp, nnz)),
            tod=r.normal(size=(n_det, n_samp)),
            det_scale=r.uniform(0.5, 1.5, n_det),
            starts=starts,
            stops=stops,
            shared_flags=shared_flags(9),
            mask=1 if with_flags else 0,
        )

    def template_offset_add_to_signal() -> Dict[str, object]:
        r = rng(10)
        return dict(
            step_length=step,
            amplitudes=r.normal(size=n_det * n_amp_det),
            amp_offsets=np.arange(n_det, dtype=np.int64) * n_amp_det,
            tod=r.normal(size=(n_det, n_samp)),
            starts=starts,
            stops=stops,
        )

    def template_offset_project_signal() -> Dict[str, object]:
        r = rng(11)
        return dict(
            step_length=step,
            tod=r.normal(size=(n_det, n_samp)),
            amplitudes=np.zeros(n_det * n_amp_det),
            amp_offsets=np.arange(n_det, dtype=np.int64) * n_amp_det,
            starts=starts,
            stops=stops,
        )

    def template_offset_apply_diag_precond() -> Dict[str, object]:
        r = rng(12)
        n = n_det * n_amp_det
        return dict(
            offset_var=r.uniform(0.5, 2.0, n),
            amp_in=r.normal(size=n),
            amp_out=np.zeros(n),
        )

    def cov_accum_diag_hits() -> Dict[str, object]:
        return dict(
            hits=np.zeros(npix, dtype=np.int64),
            pixels=pixels(13),
            starts=starts,
            stops=stops,
        )

    def cov_accum_diag_invnpp() -> Dict[str, object]:
        r = rng(14)
        n_block = nnz * (nnz + 1) // 2
        return dict(
            invnpp=np.zeros((npix, n_block)),
            pixels=pixels(14),
            weights=r.normal(size=(n_det, n_samp, nnz)),
            det_scale=r.uniform(0.5, 1.5, n_det),
            starts=starts,
            stops=stops,
        )

    return {
        fn.__name__: fn
        for fn in (
            pointing_detector,
            stokes_weights_I,
            stokes_weights_IQU,
            pixels_healpix,
            scan_map,
            noise_weight,
            build_noise_weighted,
            template_offset_add_to_signal,
            template_offset_project_signal,
            template_offset_apply_diag_precond,
            cov_accum_diag_hits,
            cov_accum_diag_invnpp,
        )
    }


def kernel_cases(
    n_det: int = 3,
    n_samp: int = 120,
    nside: int = 16,
    nnz: int = 3,
    seed: int = 314159,
    intervals: str = "irregular",
    with_flags: bool = True,
    registry: Optional[KernelRegistry] = None,
) -> Dict[str, ArgsFactory]:
    """Argument factories for every parity-eligible registered kernel.

    The kernel list comes from the registry's specs, not a hand-written
    table: a registered kernel with ``spec.parity`` but no builder here
    raises (no silent coverage gaps), as does a builder for a kernel
    that is no longer registered, or a builder whose kwargs disagree
    with the spec's argument names.
    """
    reg = registry if registry is not None else kernel_registry
    if reg is kernel_registry and not reg.kernels():
        from .. import kernels as _kernels  # noqa: F401
    specs = {
        name: spec
        for name in reg.kernels()
        if (spec := reg.spec(name)) is not None and spec.parity
    }
    builders = _arg_builders(n_det, n_samp, nside, nnz, seed, intervals, with_flags)

    uncovered = sorted(set(specs) - set(builders))
    if uncovered:
        raise RuntimeError(
            f"kernels registered without parity/microbench coverage: "
            f"{uncovered}; add argument builders in "
            f"repro/workflows/microbench.py (or declare the spec with "
            f"parity=False)"
        )
    stale = sorted(set(builders) - set(specs))
    if stale:
        raise RuntimeError(
            f"argument builders for unregistered (or parity-waived) "
            f"kernels: {stale}; remove them from repro/workflows/microbench.py"
        )

    def spec_factory(name: str) -> ArgsFactory:
        spec = specs[name]
        build = builders[name]
        outputs = list(spec.output_names())

        def factory() -> Tuple[Dict[str, object], List[str]]:
            kwargs = build()
            known = set(spec.arg_names())
            got = set(kwargs)
            # Builders may lean on kernel defaults for optional inputs, but
            # may not invent arguments or omit the spec's outputs.
            if not got <= known or not set(outputs) <= got:
                raise RuntimeError(
                    f"argument builder for kernel {name!r} drifted from its "
                    f"spec: unknown args {sorted(got - known)}, "
                    f"missing outputs {sorted(set(outputs) - got)}"
                )
            return kwargs, outputs

        return factory

    return {name: spec_factory(name) for name in sorted(specs)}


def run_kernel_case(
    name: str, impl: ImplementationType, factory: ArgsFactory
) -> List[np.ndarray]:
    """Run one kernel on fresh arguments; return its output arrays."""
    fn = kernel_registry.get(name, impl, allow_fallback=False)
    args, outputs = factory()
    fn(**args, accel=None, use_accel=False)
    return [args[k] for k in outputs]


def microbench_kernels(
    n_det: int = 32,
    n_samp: int = 4096,
    nside: int = 32,
    repeats: int = 3,
    kernels: Optional[List[str]] = None,
) -> List[Dict[str, object]]:
    """Time ``python`` vs ``numpy`` per kernel; best-of-``repeats``.

    Returns one row per kernel with the measured seconds and the batching
    speedup (the quantity the paper's "compiled CPU vs interpreted
    Python" comparisons turn on).
    """
    cases = kernel_cases(n_det=n_det, n_samp=n_samp, nside=nside)
    if kernels is not None:
        cases = {k: cases[k] for k in kernels}
    rows: List[Dict[str, object]] = []
    for name, factory in cases.items():
        times: Dict[ImplementationType, float] = {}
        for impl in (ImplementationType.PYTHON, ImplementationType.NUMPY):
            fn = kernel_registry.get(name, impl, allow_fallback=False)
            best = float("inf")
            for _ in range(repeats):
                args, _outs = factory()
                t0 = time.perf_counter()
                fn(**args, accel=None, use_accel=False)
                best = min(best, time.perf_counter() - t0)
            times[impl] = best
        py = times[ImplementationType.PYTHON]
        np_t = times[ImplementationType.NUMPY]
        rows.append(
            {
                "kernel": name,
                "n_det": n_det,
                "n_samp": n_samp,
                "python_seconds": py,
                "numpy_seconds": np_t,
                "speedup": (py / np_t) if np_t > 0 else float("inf"),
            }
        )
    return rows
