"""End-to-end workflows: the satellite benchmark and figure reports."""

from .satellite import (
    SIZES,
    SizeSpec,
    make_satellite_data,
    run_satellite_benchmark,
    satellite_processing_pipeline,
)

__all__ = [
    "SizeSpec",
    "SIZES",
    "make_satellite_data",
    "satellite_processing_pipeline",
    "run_satellite_benchmark",
]
