"""End-to-end workflows: the satellite benchmark and figure reports."""

from .products import ProductSpec, get_product, namespaces, product_names
from .satellite import (
    SIZES,
    SizeSpec,
    make_satellite_data,
    run_satellite_benchmark,
    satellite_processing_pipeline,
)

__all__ = [
    "SizeSpec",
    "SIZES",
    "ProductSpec",
    "get_product",
    "product_names",
    "namespaces",
    "make_satellite_data",
    "satellite_processing_pipeline",
    "run_satellite_benchmark",
]
