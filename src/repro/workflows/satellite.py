"""The satellite telescope benchmark (paper §4).

Assembles the full workflow: simulate the scan and the sky/noise signal,
expand pointing, compute pixels and Stokes weights, scan the sky map,
noise-weight, accumulate the noise-weighted map, and run the
template-offset map-maker.  Problem sizes are scaled-down live versions of
the paper's *medium* (5e9 samples) and *large* (5e10 samples)
configurations; the analytic performance model extrapolates to the paper's
scales (see :mod:`repro.perfmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core import (
    Data,
    ImplementationType,
    MovementPolicy,
    Pipeline,
    fake_hexagon_focalplane,
)
from ..core.timing import Timer
from ..healpix import npix as healpix_npix
from ..ompshim import OmpTargetRuntime
from ..ops import (
    BuildNoiseWeighted,
    DefaultNoiseModel,
    MapMaker,
    NoiseWeight,
    PixelsHealpix,
    PointingDetector,
    ScanMap,
    SimNoise,
    SimSatellite,
    StokesWeights,
    create_fake_sky,
)

__all__ = [
    "SizeSpec",
    "SIZES",
    "make_satellite_data",
    "satellite_processing_pipeline",
    "run_satellite_benchmark",
    "run_parallel_satellite_benchmark",
    "run_fault_injection_benchmark",
    "run_movement_comparison",
]


@dataclass(frozen=True)
class SizeSpec:
    """One benchmark problem size."""

    name: str
    n_observations: int
    n_pixels: int  # focalplane pixels (2 detectors each)
    n_samples: int  # per observation
    nside: int

    @property
    def n_detectors(self) -> int:
        return 2 * self.n_pixels

    @property
    def total_samples(self) -> int:
        return self.n_observations * self.n_detectors * self.n_samples

    @property
    def total_bytes(self) -> int:
        # TOAST's sizing rule of thumb: the paper equates 5e9 detector
        # samples with ~1 TB of data (~200 bytes/sample across all
        # timestream products).
        return 200 * self.total_samples


#: Live (scaled) sizes plus the paper's modeled sizes.  The *paper_**
#: entries are never executed directly; the performance model uses their
#: sample counts.
SIZES: Dict[str, SizeSpec] = {
    "tiny": SizeSpec("tiny", 2, 2, 1024, 16),
    "small": SizeSpec("small", 2, 7, 8192, 32),
    "medium_scaled": SizeSpec("medium_scaled", 4, 19, 16384, 64),
    # Enough observations to shard across several live workers (the
    # measured Figure 4 sweep); same per-observation cost as medium_scaled.
    "medium": SizeSpec("medium", 8, 19, 16384, 64),
    # Paper sizes: 5e9 and 5e10 total samples ("a couple thousand
    # detectors"); 2048 detectors x 26 observations x ~94k samples = 5e9.
    "paper_medium": SizeSpec("paper_medium", 26, 1024, 93912, 1024),
    "paper_large": SizeSpec("paper_large", 260, 1024, 93912, 1024),
}


def make_satellite_data(
    size: SizeSpec,
    comm=None,
    realization: int = 0,
    with_noise: bool = True,
    with_sky: bool = True,
) -> Data:
    """Simulate the benchmark dataset: scan, noise model, sky map, signal."""
    focalplane = fake_hexagon_focalplane(
        n_pixels=size.n_pixels,
        sample_rate=50.0,
        net=1.0,
        fknee=0.05,
    )
    data = Data(comm=comm)
    sim = SimSatellite(
        focalplane,
        n_observations=size.n_observations,
        n_samples=size.n_samples,
        scan_samples=max(128, size.n_samples // 8),
        gap_samples=max(8, size.n_samples // 128),
    )
    sim.apply(data)
    DefaultNoiseModel().apply(data)
    if with_sky:
        data["sky_map"] = create_fake_sky(size.nside, nnz=3, seed=realization + 11)
    if with_noise:
        SimNoise(realization=realization).apply(data)
    return data


def satellite_processing_pipeline(
    nside: int,
    implementation: Optional[ImplementationType] = None,
    accel: Optional[OmpTargetRuntime] = None,
    policy: MovementPolicy = MovementPolicy.HYBRID,
    plan: str = "eager",
    megabatch_group: Optional[int] = None,
) -> Pipeline:
    """The GPU-portable section of the benchmark.

    Pointing expansion, pixelization, Stokes weights, sky-signal scan,
    noise weighting, and noise-weighted map accumulation -- the chain of
    lightweight kernels the hybrid pipeline keeps resident on the device.
    """
    n_pix = healpix_npix(nside)
    return Pipeline(
        [
            PointingDetector(),
            PixelsHealpix(nside=nside, nest=True),
            StokesWeights(mode="IQU"),
            ScanMap(),
            NoiseWeight(),
            # The NoiseWeight op already applied N^-1 to the timestream.
            BuildNoiseWeighted(n_pix=n_pix, nnz=3, use_det_weights=False),
        ],
        name="satellite_processing",
        implementation=implementation,
        accel=accel,
        policy=policy,
        plan=plan,
        megabatch_group=megabatch_group,
    )


def run_satellite_benchmark(
    size: SizeSpec,
    implementation: ImplementationType = ImplementationType.NUMPY,
    accel: Optional[OmpTargetRuntime] = None,
    policy: MovementPolicy = MovementPolicy.HYBRID,
    mapmaking: bool = True,
    realization: int = 0,
    export_dir=None,
) -> Dict[str, object]:
    """Run the live benchmark end to end; returns outputs and timings.

    The returned dict holds the destriped map, the accumulated
    noise-weighted map, wall-clock seconds, and (when an accelerator is
    used) the virtual-clock accounting per kernel.  With ``export_dir``
    the output maps are written to disk inside the timed region -- the
    paper's runtimes include export time.
    """
    wall = Timer().start()
    data = make_satellite_data(size, realization=realization)
    pipe = satellite_processing_pipeline(
        size.nside, implementation=implementation, accel=accel, policy=policy
    )
    pipe.apply(data)

    result: Dict[str, object] = {}
    if mapmaking:
        mapper = MapMaker(
            n_pix=healpix_npix(size.nside),
            nnz=3,
            step_length=max(64, size.n_samples // 64),
            max_iterations=10,
        )
        # Map-making reuses the raw signal; run with the same dispatch.
        from ..core.dispatch import use_implementation

        with use_implementation(implementation):
            mapper.apply(data)
        result["destriped_map"] = data["destriped_map"]
        result["mapmaker_iterations"] = mapper.n_iterations_run

    if export_dir is not None:
        from ..io import save_map

        save_map(data["zmap"], f"{export_dir}/zmap", nside=size.nside, nest=True)
        if mapmaking:
            save_map(
                data["destriped_map"],
                f"{export_dir}/destriped_map",
                nside=size.nside,
                nest=True,
            )
    wall.stop()

    result["zmap"] = data["zmap"]
    result["wall_seconds"] = wall.elapsed
    result["n_samples"] = data.n_samples_total * data.obs[0].n_detectors if data.obs else 0
    if accel is not None:
        result["virtual_regions"] = accel.device.clock.regions()
        result["virtual_seconds"] = accel.device.clock.now
        result["kernels_launched"] = accel.device.kernels_launched
    return result


def run_parallel_satellite_benchmark(
    size: SizeSpec,
    implementation: ImplementationType = ImplementationType.NUMPY,
    n_procs: int = 1,
    realization: int = 0,
) -> Dict[str, object]:
    """The benchmark's processing chain sharded across live processes.

    Thin wrapper over :func:`repro.parallel.run_parallel_satellite` (kept
    here so workflow callers import one module).  Simulation and the
    noise-weighted map accumulation run per observation inside the
    workers; the parent reduces the partial maps in fixed observation
    order, making the result bitwise independent of ``n_procs``.  The
    iterative map-maker needs every detector timestream at once, so this
    measured path stops at the noise-weighted map -- the same section the
    hybrid-pipeline timings in Figure 4 are dominated by.
    """
    from ..parallel import run_parallel_satellite

    return run_parallel_satellite(
        size,
        implementation=implementation,
        n_procs=n_procs,
        realization=realization,
    )


def run_movement_comparison(
    size: SizeSpec,
    implementation: ImplementationType = ImplementationType.OMP_TARGET,
    realization: int = 0,
) -> Dict[str, object]:
    """The chain under NAIVE, HYBRID, COMPILED, and MEGABATCH movement.

    Runs the same problem four times on fresh devices and reports, per
    policy, the *exposed* transfer seconds (synchronous copies plus
    waited-out async tails), copy counts, launch counts, and — for the
    compiled/megabatch plans — the elision/fusion/overlap numbers.  The
    megabatch entry also records ``launch_reduction``: eager per-
    observation dispatch launches divided by its own.  All four runs
    must produce bitwise-identical noise-weighted maps; ``identical`` in
    the result records the check.
    """
    from .. import obs as _obs
    from ..compilepipe import transfer_seconds
    from ..obs.events import EventType

    runs = [
        ("naive", MovementPolicy.NAIVE, "eager"),
        ("hybrid", MovementPolicy.HYBRID, "eager"),
        ("compiled", MovementPolicy.HYBRID, "compiled"),
        ("megabatch", MovementPolicy.HYBRID, "megabatch"),
    ]
    out: Dict[str, object] = {"policies": {}}
    zmaps = {}
    for mode, policy, plan in runs:
        accel = OmpTargetRuntime()
        data = make_satellite_data(size, realization=realization)
        pipe = satellite_processing_pipeline(
            size.nside, implementation=implementation, accel=accel, policy=policy
        )
        pipe.plan = plan
        tracer = _obs.Tracer()
        with _obs.tracing(tracer):
            pipe.exec(data, use_accel=True, accel=accel)
        clock = accel.device.clock
        m = tracer.metrics
        entry: Dict[str, object] = {
            "transfer_exposed_seconds": transfer_seconds(clock),
            "h2d_copies": len(tracer.events_of(EventType.H2D)),
            "d2h_copies": len(tracer.events_of(EventType.D2H)),
            "h2d_bytes": m.counter("transfer.h2d_bytes").value,
            "d2h_bytes": m.counter("transfer.d2h_bytes").value,
            "kernels_launched": accel.device.kernels_launched,
            "virtual_seconds": clock.now,
        }
        if plan in ("compiled", "megabatch"):
            entry["transfers_elided"] = m.counter("pipeline.transfers_elided").value
            entry["fused_groups"] = m.counter("pipeline.fused_groups").value
            entry["launches_elided"] = m.counter("pipeline.launches_elided").value
            entry["overlap_seconds"] = m.counter("pipeline.overlap_seconds").value
            if plan == "compiled":
                out["plan"] = pipe.last_plan
        zmaps[mode] = data["zmap"]
        out["policies"][mode] = entry

    naive_s = out["policies"]["naive"]["transfer_exposed_seconds"]
    for mode in ("hybrid", "compiled", "megabatch"):
        e = out["policies"][mode]
        e["transfer_saving"] = (
            1.0 - e["transfer_exposed_seconds"] / naive_s if naive_s > 0 else 0.0
        )
    # Launch reduction vs per-observation dispatch (eager hybrid is the
    # per-observation baseline the paper's launch-overhead argument uses).
    hybrid_l = out["policies"]["hybrid"]["kernels_launched"]
    mb_l = out["policies"]["megabatch"]["kernels_launched"]
    out["policies"]["megabatch"]["launch_reduction"] = (
        hybrid_l / mb_l if mb_l > 0 else 0.0
    )
    out["identical"] = bool(
        np.array_equal(zmaps["naive"], zmaps["hybrid"])
        and np.array_equal(zmaps["naive"], zmaps["compiled"])
        and np.array_equal(zmaps["naive"], zmaps["megabatch"])
    )
    out["zmap"] = zmaps["compiled"]
    return out


def run_fault_injection_benchmark(
    size: SizeSpec,
    implementation: ImplementationType = ImplementationType.JAX,
    plan_name: str = "oom-then-recover",
    seed: int = 0,
    policy: MovementPolicy = MovementPolicy.HYBRID,
    mapmaking: bool = True,
    realization: int = 0,
    tracer=None,
) -> Dict[str, object]:
    """Run the benchmark fault-free, then again under an injected fault
    plan, and compare the output maps bit for bit.

    The faulted run executes with a :class:`~repro.resilience.controller.
    ResilienceController` installed: injected faults fire per the named
    plan (re-seeded with ``seed`` for exact replay) and the recovery plane
    handles them.  A ``tracer`` captures the faulted run's events so every
    recovery decision is visible in the exported trace.  Returns the
    recovery report plus per-map comparisons (max abs diff and a CRC32 of
    the raw bytes -- when recovery keeps execution on the device the maps
    must be bitwise identical).
    """
    import zlib

    from .. import obs as _obs
    from .. import resilience
    from ..resilience.plans import named_plan

    plan = named_plan(plan_name, seed=seed)
    # Plans whose every site lives in the worker pool exercise the
    # multiprocess path (the elastic scheduler); device-site plans run the
    # in-process device benchmark.  Either way: clean run, faulted run,
    # bitwise comparison.
    parallel_mode = all(s.site.startswith("parallel.") for s in plan.specs)

    def _accel() -> Optional[OmpTargetRuntime]:
        if implementation in (ImplementationType.JAX, ImplementationType.OMP_TARGET):
            return OmpTargetRuntime()
        return None

    def _run_once(accel) -> Dict[str, object]:
        if parallel_mode:
            return run_parallel_satellite_benchmark(
                size, implementation, n_procs=2, realization=realization
            )
        return run_satellite_benchmark(
            size,
            implementation,
            accel=accel,
            policy=policy,
            mapmaking=mapmaking,
            realization=realization,
        )

    clean = _run_once(_accel())

    accel = _accel()
    faulted: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    with resilience.resilient(plan) as ctrl:
        if accel is not None and not parallel_mode:
            ctrl.bind_clock(accel.device.clock)
        try:
            if tracer is not None:
                with _obs.tracing(tracer):
                    faulted = _run_once(accel)
            else:
                faulted = _run_once(accel)
        except Exception as exc:  # recovery failed: report, don't mask
            error = f"{type(exc).__name__}: {exc}"

    def _crc(arr: np.ndarray) -> int:
        return zlib.crc32(np.ascontiguousarray(arr).tobytes())

    maps: Dict[str, Dict[str, object]] = {}
    if parallel_mode or not mapmaking:
        names = ["zmap"]
    else:
        names = ["zmap", "destriped_map"]
    if faulted is not None:
        for name in names:
            a, b = np.asarray(clean[name]), np.asarray(faulted[name])
            maps[name] = {
                "max_abs_diff": float(np.max(np.abs(a - b))) if a.size else 0.0,
                "identical": bool(
                    a.shape == b.shape and a.dtype == b.dtype and np.array_equal(a, b)
                ),
                "crc32_clean": _crc(a),
                "crc32_faulted": _crc(b),
            }

    report = ctrl.report()
    report["mode"] = "parallel" if parallel_mode else "device"
    report["maps"] = maps
    report["error"] = error
    report["all_identical"] = error is None and all(
        m["identical"] for m in maps.values()
    )
    report["clean_virtual_seconds"] = clean.get("virtual_seconds")
    if faulted is not None:
        report["faulted_virtual_seconds"] = faulted.get("virtual_seconds")
        if parallel_mode:
            report["elastic"] = faulted.get("elastic")
            report["recovered_ranks"] = faulted.get("recovered_ranks")
            report["crash_injected_ranks"] = faulted.get("crash_injected_ranks")
    return report
