"""Counter-based random numbers (Threefry-2x64-20, Random123 style).

TOAST draws all simulation randomness from a counter-based RNG so that any
(observation, detector, sample-block) triple reproduces the same stream on
any machine, any process count, and any execution order.  The paper's
kernels rely on this for the simulated noise; the JAX port maps naturally
onto it because JAX's own ``PRNGKey`` is Threefry as well --
:mod:`repro.jaxshim.prng` reuses this module.
"""

from .threefry import threefry2x64, rotl64
from .distributions import random, uniform01, uniform_m11, gaussian

__all__ = [
    "threefry2x64",
    "rotl64",
    "random",
    "uniform01",
    "uniform_m11",
    "gaussian",
]
