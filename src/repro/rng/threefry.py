"""Threefry-2x64 block cipher (Salmon et al., "Parallel random numbers:
as easy as 1, 2, 3", SC 2011), vectorized over NumPy uint64 arrays.

Threefry is the counter-based generator used both by TOAST (via Random123)
and by JAX's PRNG.  The 20-round variant implemented here is the Random123
default ("crush-resistant" per the paper).
"""

from __future__ import annotations

import numpy as np

#: Key-schedule parity constant (SKEIN_KS_PARITY for 64-bit words).
KS_PARITY = np.uint64(0x1BD11BDAA9FC1A22)

#: Per-round rotation constants for Threefry-2x64.
ROTATIONS = (16, 42, 12, 31, 16, 32, 24, 21)


def rotl64(x: np.ndarray, n: int) -> np.ndarray:
    """Rotate uint64 values left by ``n`` bits (0 < n < 64)."""
    x = np.asarray(x, dtype=np.uint64)
    n = int(n) % 64
    if n == 0:
        return x.copy()
    return (x << np.uint64(n)) | (x >> np.uint64(64 - n))


def threefry2x64(
    ctr0: np.ndarray,
    ctr1: np.ndarray,
    key0: np.ndarray,
    key1: np.ndarray,
    rounds: int = 20,
) -> tuple[np.ndarray, np.ndarray]:
    """Encrypt counters ``(ctr0, ctr1)`` under key ``(key0, key1)``.

    All four inputs broadcast against each other; the outputs are two
    uint64 arrays of the broadcast shape.  With distinct counters the
    outputs are high-quality independent 64-bit random words.
    """
    if rounds < 1 or rounds > 32:
        raise ValueError(f"rounds must be in [1, 32], got {rounds}")
    c0 = np.asarray(ctr0, dtype=np.uint64)
    c1 = np.asarray(ctr1, dtype=np.uint64)
    k0 = np.asarray(key0, dtype=np.uint64)
    k1 = np.asarray(key1, dtype=np.uint64)

    ks0 = k0
    ks1 = k1
    ks2 = KS_PARITY ^ k0 ^ k1
    ks = (ks0, ks1, ks2)

    # All additions are modular (mod 2**64) by design of the cipher.
    with np.errstate(over="ignore"):
        x0 = c0 + ks0
        x1 = c1 + ks1

        for r in range(rounds):
            x0 = x0 + x1
            x1 = rotl64(x1, ROTATIONS[r % 8])
            x1 = x1 ^ x0
            if (r + 1) % 4 == 0:
                j = (r + 1) // 4
                x0 = x0 + ks[j % 3]
                x1 = x1 + ks[(j + 1) % 3] + np.uint64(j)

    return x0, x1


def threefry2x64_stream(
    n: int,
    key: tuple[int, int],
    counter: tuple[int, int] = (0, 0),
    rounds: int = 20,
) -> np.ndarray:
    """Generate ``n`` random uint64 words from consecutive counters.

    Word ``i`` comes from encrypting ``(counter[0], counter[1] + i//2)``;
    the cipher yields two words per counter, consumed in order.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    n_blocks = (n + 1) // 2
    c1 = np.uint64(counter[1]) + np.arange(n_blocks, dtype=np.uint64)
    x0, x1 = threefry2x64(
        np.uint64(counter[0]), c1, np.uint64(key[0]), np.uint64(key[1]), rounds=rounds
    )
    out = np.empty(2 * n_blocks, dtype=np.uint64)
    out[0::2] = x0
    out[1::2] = x1
    return out[:n]
