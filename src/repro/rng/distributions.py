"""Distributions on top of the Threefry stream, mirroring TOAST's ``rng``.

TOAST exposes ``rng.random(n, key=(k0,k1), counter=(c0,c1), sampler=...)``
with samplers ``uniform_01``, ``uniform_m11``, and ``gaussian``; the same
interface is reproduced here.  Determinism contract: the value of sample
``i`` depends only on ``(key, counter, i)``.
"""

from __future__ import annotations

import numpy as np

from .threefry import threefry2x64, threefry2x64_stream

#: 2**-64 as a float; converts a uint64 word to a uniform in [0, 1).
_SCALE64 = float(2.0**-64)
#: 2**-53; used for the 53-bit mantissa path.
_SCALE53 = float(2.0**-53)


def _to_unit_interval(words: np.ndarray) -> np.ndarray:
    """Map uint64 words to doubles in [0, 1) using the top 53 bits."""
    return (words >> np.uint64(11)).astype(np.float64) * _SCALE53


def uniform01(
    n: int, key: tuple[int, int], counter: tuple[int, int] = (0, 0)
) -> np.ndarray:
    """``n`` uniform doubles in ``[0, 1)``."""
    return _to_unit_interval(threefry2x64_stream(n, key, counter))


def uniform_m11(
    n: int, key: tuple[int, int], counter: tuple[int, int] = (0, 0)
) -> np.ndarray:
    """``n`` uniform doubles in ``[-1, 1)``."""
    return 2.0 * uniform01(n, key, counter) - 1.0


def gaussian(
    n: int, key: tuple[int, int], counter: tuple[int, int] = (0, 0)
) -> np.ndarray:
    """``n`` standard normal doubles via Box-Muller.

    Each output pair consumes one cipher block (two uniforms), so sample
    ``i`` is a pure function of ``(key, counter, i)`` as required by the
    reproducibility contract.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    n_pairs = (n + 1) // 2
    c1 = np.uint64(counter[1]) + np.arange(n_pairs, dtype=np.uint64)
    w0, w1 = threefry2x64(
        np.uint64(counter[0]), c1, np.uint64(key[0]), np.uint64(key[1])
    )
    # Guard u1 away from 0 so log() is finite: use (w >> 11 | 1) / 2^53.
    u1 = ((w0 >> np.uint64(11)) | np.uint64(1)).astype(np.float64) * _SCALE53
    u2 = (w1 >> np.uint64(11)).astype(np.float64) * _SCALE53
    radius = np.sqrt(-2.0 * np.log(u1))
    angle = 2.0 * np.pi * u2
    out = np.empty(2 * n_pairs, dtype=np.float64)
    out[0::2] = radius * np.cos(angle)
    out[1::2] = radius * np.sin(angle)
    return out[:n]


_SAMPLERS = {
    "uniform_01": uniform01,
    "uniform_m11": uniform_m11,
    "gaussian": gaussian,
}


def random(
    n: int,
    key: tuple[int, int] = (0, 0),
    counter: tuple[int, int] = (0, 0),
    sampler: str = "uniform_01",
) -> np.ndarray:
    """TOAST-compatible entry point dispatching on ``sampler`` name."""
    try:
        fn = _SAMPLERS[sampler]
    except KeyError:
        raise ValueError(
            f"unknown sampler {sampler!r}; choose from {sorted(_SAMPLERS)}"
        ) from None
    return fn(n, key, counter)
