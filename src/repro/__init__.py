"""repro — reproduction of *High-level GPU code: a case study examining JAX
and OpenMP* (Demeure et al., SC-W 2023).

The package rebuilds, in pure Python, the system the paper studies:

* a TOAST-like time-ordered-data framework (:mod:`repro.core`,
  :mod:`repro.ops`, :mod:`repro.workflows`),
* the ten ported kernels in four implementations (:mod:`repro.kernels`),
* a mini-JAX tracing/JIT library (:mod:`repro.jaxshim`),
* a mini OpenMP Target Offload runtime (:mod:`repro.ompshim`),
* a simulated accelerator with memory pool, transfer, and MPS models
  (:mod:`repro.accel`),
* a calibrated performance model regenerating the paper's figures
  (:mod:`repro.perfmodel`).

Quickstart::

    from repro.workflows.satellite import make_satellite_data, satellite_pipeline
    from repro.core.dispatch import ImplementationType

    data = make_satellite_data(n_detectors=4, n_samples=4096, seed=0)
    pipe = satellite_pipeline(implementation=ImplementationType.NUMPY)
    pipe.apply(data)
"""

from ._version import __version__

__all__ = ["__version__"]
