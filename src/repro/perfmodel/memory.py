"""Device-memory footprint model (the OOM points of Fig 4).

The paper reports, for the medium problem (~1 TB on one node with four
40 GB A100s):

* JAX does **not** fit at 1 process and at 64 processes;
* OpenMP Target Offload **does** fit at 1 process ("hinting at a lower
  memory usage compared to JAX") but not at 64.

The model: each process stages a fraction of its data share onto its GPU
(JAX stages more -- functional updates keep copies alive in the XLA pool),
plus a fixed per-process device overhead (CUDA context, runtime buffers,
and for JAX the allocator arena).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mpi import SimWorld

__all__ = ["MemoryModel"]

GiB = float(1024**3)


@dataclass(frozen=True)
class MemoryModel:
    """Per-GPU footprint as a function of layout and implementation."""

    #: Fraction of a process's data share resident on the device at peak.
    resident_fraction_omp: float = 0.035
    #: JAX keeps more alive: output donation is not universal and the pool
    #: retains freed blocks.
    resident_fraction_jax: float = 0.06
    #: Fixed per-process device overhead in bytes.
    overhead_omp_bytes: float = 2.2 * GiB
    overhead_jax_bytes: float = 2.5 * GiB

    def _params(self, backend: str) -> tuple[float, float]:
        if backend == "jax":
            return self.resident_fraction_jax, self.overhead_jax_bytes
        if backend == "omp":
            return self.resident_fraction_omp, self.overhead_omp_bytes
        raise ValueError(f"unknown backend {backend!r}")

    def footprint_per_gpu(
        self, backend: str, world: SimWorld, data_bytes_per_node: float
    ) -> float:
        """Peak bytes on the busiest GPU of a node."""
        fraction, overhead = self._params(backend)
        p = world.procs_per_node
        # Processes bind round-robin to GPUs; with p < gpus some GPUs idle.
        procs_on_gpu = max(1, -(-p // world.node.gpus))  # ceil
        data_per_proc = data_bytes_per_node / p
        return procs_on_gpu * (fraction * data_per_proc + overhead)

    def fits(self, backend: str, world: SimWorld, data_bytes_per_node: float) -> bool:
        """Whether the layout fits in device memory."""
        return (
            self.footprint_per_gpu(backend, world, data_bytes_per_node)
            <= world.node.gpu_memory_bytes
        )
