"""Calibration constants, each traceable to a statement in the paper.

Where the paper gives an exact number (per-kernel speedups, overall
speedups, the Amdahl bound) it is encoded directly.  Where the paper gives
only a plot (absolute per-kernel seconds in Fig 6, the CPU curve of Fig 4)
the constants are plausible values consistent with the stated ratios; they
set the *scale* of the reproduction, while every *relation* the paper
reports is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "KernelCalibration",
    "KERNEL_CALIBRATION",
    "ACCEL_DATA_CALIBRATION",
    "SWEEP_SPEEDUP_ANCHORS",
    "SWEEP_PROCESS_COUNTS",
    "FULL_BENCHMARK",
    "AMDAHL_BOUND",
    "CPU_MODEL",
]


@dataclass(frozen=True)
class KernelCalibration:
    """One kernel's costs at the Fig 6 configuration (medium, 16 procs).

    ``cpu_seconds`` is the total CPU-baseline time over the run;
    the speedups are the paper's per-kernel GPU accelerations.
    """

    name: str
    cpu_seconds: float
    jax_speedup: float
    omp_speedup: float

    def seconds(self, backend: str) -> float:
        if backend == "cpu":
            return self.cpu_seconds
        if backend == "jax":
            return self.cpu_seconds / self.jax_speedup
        if backend == "omp":
            return self.cpu_seconds / self.omp_speedup
        raise ValueError(f"unknown backend {backend!r}")


#: Per-kernel calibration (benchmark's 8 kernels).  Anchored speedups from
#: §4.2: JAX spans 1.5x (offset_add_to_signal) to 45x
#: (offset_project_signal) with stokes_weights_IQU at 18x and
#: pixels_healpix at 11x; OMP spans 5x to 61x with pixels_healpix at 41x
#: and offset_project_signal at 19x; OMP averages ~2.4x faster than JAX.
KERNEL_CALIBRATION: Dict[str, KernelCalibration] = {
    k.name: k
    for k in [
        KernelCalibration("pointing_detector", 45.0, 8.0, 20.0),
        KernelCalibration("stokes_weights_IQU", 90.0, 18.0, 61.0),
        KernelCalibration("pixels_healpix", 60.0, 11.0, 41.0),
        KernelCalibration("scan_map", 35.0, 10.0, 25.0),
        KernelCalibration("noise_weight", 12.0, 4.0, 9.0),
        KernelCalibration("build_noise_weighted", 30.0, 12.0, 30.0),
        KernelCalibration("template_offset_add_to_signal", 8.0, 1.5, 5.0),
        KernelCalibration("template_offset_project_signal", 15.0, 45.0, 19.0),
    ]
}

#: Data-movement rows of Fig 6 ("most of the data operations barely
#: register on the plot", and "JAX spends significantly less time updating
#: device data and resetting device buffers").
ACCEL_DATA_CALIBRATION: Dict[str, Dict[str, float]] = {
    "accel_data_update_device": {"jax": 1.0, "omp": 2.5},
    "accel_data_reset": {"jax": 0.3, "omp": 1.2},
    "accel_data_update_host": {"jax": 0.8, "omp": 1.0},
    "accel_data_delete": {"jax": 0.2, "omp": 0.3},
}

#: Fig 4 anchors: total-runtime speedup vs the CPU baseline at the same
#: process count (medium problem, one node).  None marks out-of-memory
#: (JAX at 1 and 64 processes; both at 64).  Values at 8/16/32 are stated
#: in §4.1; the 2- and 4-process points interpolate toward the stated
#: under-subscription penalty.
SWEEP_PROCESS_COUNTS = (1, 2, 4, 8, 16, 32, 64)

SWEEP_SPEEDUP_ANCHORS: Dict[str, Dict[int, Optional[float]]] = {
    "jax": {1: None, 2: 1.6, 4: 2.0, 8: 2.4, 16: 2.3, 32: 2.0, 64: None},
    "omp": {1: 1.9, 2: 2.0, 4: 2.4, 8: 2.9, 16: 2.7, 32: 2.3, 64: None},
}

#: §4.2 / Fig 5: large problem (8 nodes, 16 procs/node, 4 threads).
FULL_BENCHMARK = {
    "jax_speedup": 2.28,
    "omp_speedup": 2.58,
    # "it was 7.4x times *slower* than our parallelized CPU baseline".
    "jax_cpu_backend_slowdown": 7.4,
}

#: §4: "our overall speed-up is strictly bounded by Amdahl's law to about
#: 3x" (serial Python + >30 unported kernels).
AMDAHL_BOUND = 3.0

#: The CPU-baseline runtime decomposition for the medium problem on one
#: node: T(p) = serial/p + unported + ported.  ``serial`` is per-process
#: serial work parallelized by adding processes (the §4.1 explanation of
#: the falling CPU curve); ``unported`` and ``ported`` use all 64 cores
#: regardless of the process/thread split, so they are flat in p.  The
#: split is chosen so the ideal-GPU limit at 16 processes matches the
#: stated ~3x Amdahl bound.
CPU_MODEL = {
    "serial_seconds": 1400.0,
    "unported_seconds": 60.0,
    # 295 s of ported kernels against 147.5 s of serial+unported at 16
    # processes: an ideal-GPU limit of exactly 3.0x.
    "ported_seconds": sum(k.cpu_seconds for k in KERNEL_CALIBRATION.values()),
}
