"""Whole-run runtime model: Figs 4 and 5 plus the per-kernel table (Fig 6).

The CPU baseline follows the decomposition in
:data:`~repro.perfmodel.calibration.CPU_MODEL`; accelerated totals apply
the calibrated speedup anchors (log-interpolated between measured process
counts).  The MPS effect follows §3.1.2: without MPS the CUDA driver
context-switches between processes, capping OMP performance at one
process per device -- JAX is unaffected (it was run without MPS).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from ..mpi import SimWorld
from .calibration import (
    ACCEL_DATA_CALIBRATION,
    CPU_MODEL,
    FULL_BENCHMARK,
    KERNEL_CALIBRATION,
    SWEEP_PROCESS_COUNTS,
    SWEEP_SPEEDUP_ANCHORS,
)
from .memory import MemoryModel

__all__ = [
    "Backend",
    "cpu_runtime",
    "speedup_anchor",
    "accel_runtime",
    "SweepPoint",
    "process_sweep",
    "full_benchmark_runtimes",
    "per_kernel_times",
]


class Backend(Enum):
    """The three measured configurations (plus JAX's CPU backend)."""

    CPU = "cpu"
    JAX = "jax"
    OMP = "omp"
    JAX_CPU_BACKEND = "jax_cpu_backend"


def cpu_runtime(n_procs: int, size_scale: float = 1.0) -> float:
    """CPU-baseline wall seconds for the medium problem scaled by
    ``size_scale`` (per-node data volume relative to medium)."""
    if n_procs < 1:
        raise ValueError("n_procs must be >= 1")
    t = (
        CPU_MODEL["serial_seconds"] / n_procs
        + CPU_MODEL["unported_seconds"]
        + CPU_MODEL["ported_seconds"]
    )
    return t * size_scale


def speedup_anchor(backend: Backend, n_procs: int) -> Optional[float]:
    """Calibrated total-runtime speedup at ``n_procs`` (None = OOM).

    Log2-linear interpolation between the anchor process counts.
    """
    if backend is Backend.CPU:
        return 1.0
    anchors = SWEEP_SPEEDUP_ANCHORS[backend.value]
    counts = sorted(anchors)
    if n_procs in anchors:
        return anchors[n_procs]
    if n_procs < counts[0] or n_procs > counts[-1]:
        raise ValueError(f"process count {n_procs} outside the calibrated sweep")
    lo = max(c for c in counts if c < n_procs)
    hi = min(c for c in counts if c > n_procs)
    s_lo, s_hi = anchors[lo], anchors[hi]
    if s_lo is None or s_hi is None:
        return None
    frac = (math.log2(n_procs) - math.log2(lo)) / (math.log2(hi) - math.log2(lo))
    return s_lo + frac * (s_hi - s_lo)


def accel_runtime(
    backend: Backend,
    world: SimWorld,
    size_scale: float = 1.0,
    mps_enabled: bool = True,
    memory: Optional[MemoryModel] = None,
    data_bytes_per_node: Optional[float] = None,
) -> Optional[float]:
    """Accelerated wall seconds, or None when the layout does not fit.

    ``data_bytes_per_node`` enables the memory check (pass the problem's
    per-node bytes); without it only the runtime is modeled.
    """
    p = world.procs_per_node
    base = cpu_runtime(p, size_scale)
    if backend is Backend.CPU:
        return base
    if backend is Backend.JAX_CPU_BACKEND:
        return base * FULL_BENCHMARK["jax_cpu_backend_slowdown"]

    if memory is not None and data_bytes_per_node is not None:
        if not memory.fits(backend.value, world, data_bytes_per_node):
            return None

    if backend is Backend.OMP and not mps_enabled:
        # §3.1.2: without MPS the CUDA driver context-switches between
        # processes, "effectively capping our performance to one process
        # per device" -- the run behaves as if only gpus-many processes
        # were driving the work.
        effective_procs = min(p, world.node.gpus)
        s = speedup_anchor(backend, max(1, effective_procs))
        if s is None:
            return None
        return cpu_runtime(effective_procs, size_scale) / s

    s = speedup_anchor(backend, p)
    if s is None:
        return None
    return base / s


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of the Fig 4 sweep."""

    n_procs: int
    backend: Backend
    runtime_s: Optional[float]  # None = out of memory
    speedup: Optional[float]


def process_sweep(
    size_scale: float = 1.0,
    data_bytes_per_node: float = 1.0e12,
    mps_enabled: bool = True,
) -> List[SweepPoint]:
    """The full Fig 4 dataset: every backend at every process count."""
    memory = MemoryModel()
    out: List[SweepPoint] = []
    for p in SWEEP_PROCESS_COUNTS:
        world = SimWorld(n_nodes=1, procs_per_node=p)
        base = cpu_runtime(p, size_scale)
        out.append(SweepPoint(p, Backend.CPU, base, 1.0))
        for backend in (Backend.JAX, Backend.OMP):
            t = accel_runtime(
                backend,
                world,
                size_scale,
                mps_enabled=mps_enabled,
                memory=memory,
                data_bytes_per_node=data_bytes_per_node,
            )
            out.append(
                SweepPoint(p, backend, t, None if t is None else base / t)
            )
    return out


def full_benchmark_runtimes(n_nodes: int = 8, procs_per_node: int = 16) -> Dict[Backend, float]:
    """Fig 5: the large problem (10 TB over ``n_nodes``).

    Per-node data is 10 TB / 8 nodes = 1.25x the medium per-node volume.
    """
    size_scale = 1.25 * (8 / n_nodes) if n_nodes else 1.25
    base = cpu_runtime(procs_per_node, size_scale)
    return {
        Backend.CPU: base,
        Backend.JAX: base / FULL_BENCHMARK["jax_speedup"],
        Backend.OMP: base / FULL_BENCHMARK["omp_speedup"],
        Backend.JAX_CPU_BACKEND: base * FULL_BENCHMARK["jax_cpu_backend_slowdown"],
    }


def per_kernel_times(backend: Backend) -> Dict[str, float]:
    """Fig 6: per-kernel totals (medium, 16 procs), plus data movement."""
    if backend is Backend.CPU:
        return {name: k.cpu_seconds for name, k in KERNEL_CALIBRATION.items()}
    if backend not in (Backend.JAX, Backend.OMP):
        raise ValueError("per-kernel times exist for CPU, JAX, and OMP only")
    key = backend.value
    out = {name: k.seconds(key) for name, k in KERNEL_CALIBRATION.items()}
    for op, vals in ACCEL_DATA_CALIBRATION.items():
        out[op] = vals[key]
    return out
