"""Node energy model: the intro's motivation, quantified.

Paper §1: "GPUs offer lower energy consumption, allowing supercomputers to
scale further."  This module attaches published node power figures to the
runtime model so the benchmark's energy cost can be compared across
backends: a GPU run draws more power but finishes enough faster that the
energy per solved problem drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .runtime_model import Backend, full_benchmark_runtimes

__all__ = ["NodePower", "energy_per_run", "full_benchmark_energy"]


@dataclass(frozen=True)
class NodePower:
    """Power draw (watts) of one Perlmutter GPU node's components.

    Published figures: AMD Milan 7763 ~280 W TDP; A100 SXM ~400 W peak,
    ~90 W idle; ~200 W for memory, NIC, fans, and conversion losses.
    """

    cpu_w: float = 280.0
    gpu_active_w: float = 400.0
    gpu_idle_w: float = 90.0
    overhead_w: float = 200.0
    n_gpus: int = 4

    def __post_init__(self) -> None:
        if min(self.cpu_w, self.gpu_active_w, self.gpu_idle_w, self.overhead_w) < 0:
            raise ValueError("power draws must be non-negative")
        if self.gpu_idle_w > self.gpu_active_w:
            raise ValueError("idle draw cannot exceed active draw")
        if self.n_gpus < 0:
            raise ValueError("n_gpus must be non-negative")

    def node_watts(self, gpu_duty_cycle: float) -> float:
        """Node draw with the GPUs busy ``gpu_duty_cycle`` of the time."""
        if not 0.0 <= gpu_duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in [0, 1]")
        gpu = self.gpu_idle_w + gpu_duty_cycle * (self.gpu_active_w - self.gpu_idle_w)
        return self.cpu_w + self.n_gpus * gpu + self.overhead_w


#: Fraction of an accelerated run during which the GPUs actually execute
#: kernels.  The ported kernels run 20-60x faster on the device, so the
#: GPUs sit idle through the serial Python and unported-kernel phases that
#: Amdahl's law says dominate the accelerated run.
DEFAULT_GPU_DUTY_CYCLE = 0.15


def energy_per_run(
    backend: Backend,
    runtime_s: float,
    power: NodePower = NodePower(),
    n_nodes: int = 8,
    gpu_duty_cycle: float = DEFAULT_GPU_DUTY_CYCLE,
) -> float:
    """Modeled joules for one benchmark run.

    CPU-only runs still pay the idle draw of the node's GPUs (the paper's
    measurements run on GPU nodes either way); accelerated runs drive the
    devices at ``gpu_duty_cycle``.
    """
    if runtime_s < 0:
        raise ValueError("runtime must be non-negative")
    duty = gpu_duty_cycle if backend in (Backend.JAX, Backend.OMP) else 0.0
    return n_nodes * power.node_watts(duty) * runtime_s


def full_benchmark_energy(
    power: NodePower = NodePower(), n_nodes: int = 8
) -> Dict[Backend, float]:
    """Fig 5's configurations, in joules."""
    times = full_benchmark_runtimes(n_nodes=n_nodes)
    return {
        backend: energy_per_run(backend, t, power=power, n_nodes=n_nodes)
        for backend, t in times.items()
    }
