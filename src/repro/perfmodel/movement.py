"""Analytic data-movement model for the three pipeline policies.

Given a plan's buffer lifetimes and a link model, predict the transfer
volume and *exposed* transfer time of each movement policy:

* **NAIVE** — every accelerated stage pulls its inputs H2D and pushes its
  outputs D2H (the paper's transfer-around-every-kernel strawman);
* **HYBRID** — data stays resident between consecutive device stages,
  synced only around host readers and at pipeline exit (the paper's
  ~40% saving);
* **COMPILED** — the :mod:`repro.compilepipe` plan: zero-fill H2Ds become
  on-device memsets, first touches prefetch behind the previous stage's
  compute, and drains coalesce behind later compute, so the *exposed*
  time is a lower bound of copies that cannot hide (first-stage
  stage-ins and the final drain's tail).

The model is deliberately simple — one link, no contention — and is
validated against measured virtual-clock numbers in the sweep: the
measured ordering NAIVE > HYBRID > COMPILED must match the model's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["MovementEstimate", "estimate_movement"]


@dataclass(frozen=True)
class MovementEstimate:
    """Predicted movement cost of one policy over one workflow."""

    policy: str
    h2d_bytes: int
    d2h_bytes: int
    h2d_copies: int
    d2h_copies: int
    #: Seconds of transfer the host actually waits on (overlapped and
    #: elided copies excluded).
    exposed_seconds: float
    #: Kernel launches the policy performs (fusion and megabatch stacking
    #: elide launches vs the eager per-observation dispatch).
    launches: int = 0
    #: Launch overhead those launches cost.
    launch_seconds: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes

    @property
    def total_copies(self) -> int:
        return self.h2d_copies + self.d2h_copies


def _copy_seconds(model, nbytes: int, copies: int) -> float:
    if copies <= 0:
        return 0.0
    return copies * model.latency_s + nbytes / model.bandwidth_bps


def estimate_movement(
    plan, transfer_model, launch_overhead_s: float = 5.0e-6
) -> Dict[str, MovementEstimate]:
    """Predict NAIVE / HYBRID / COMPILED / MEGABATCH cost for a plan.

    ``plan`` is a :class:`~repro.compilepipe.planner.PipelinePlan` (its IR
    holds the buffer lifetimes all policies are derived from);
    ``transfer_model`` is an :class:`~repro.accel.transfer.TransferModel`.

    Besides transfer volume, each estimate carries an analytic launch
    count: naive and hybrid dispatch once per kernel per observation,
    compiled subtracts cross-operator fusion, and the extra ``megabatch``
    entry (movement identical to compiled) additionally stacks each
    kernel's per-observation calls into one launch — the launches-saved
    term ``launch_seconds`` makes explicit.
    """
    from ..compilepipe.planner import eager_launches, planned_launch_elisions

    ir = plan.ir
    eager_l = eager_launches(ir)
    comp_l = eager_l - planned_launch_elisions(ir, plan.groups, megabatch=False)
    mb_l = eager_l - planned_launch_elisions(ir, plan.groups, megabatch=True)

    naive_h2d_b = naive_d2h_b = naive_h2d_c = naive_d2h_c = 0
    hyb_h2d_b = hyb_d2h_b = hyb_h2d_c = hyb_d2h_c = 0
    comp_h2d_b = comp_d2h_b = comp_h2d_c = comp_d2h_c = 0

    for life in ir.buffers.values():
        device_uses = [u for u in life.uses if u.on_device]
        if not device_uses:
            continue
        nbytes = life.nbytes

        # NAIVE: in for every device use, out after every device write.
        naive_h2d_c += len(device_uses)
        naive_h2d_b += nbytes * len(device_uses)
        writes = sum(1 for u in device_uses if u.writes)
        naive_d2h_c += writes
        naive_d2h_b += nbytes * writes

        # HYBRID: one stage-in per residency interval (re-staged after any
        # host write between device uses), one drain at exit if written,
        # plus a sync for every host read of device-newer data.
        hyb_h2d_c += 1
        hyb_h2d_b += nbytes
        host_writes_between = sum(
            1
            for u in life.uses
            if (not u.on_device)
            and u.writes
            and life.next_device_use(u.stage) is not None
        )
        hyb_h2d_c += host_writes_between
        hyb_h2d_b += nbytes * host_writes_between
        if life.device_written():
            host_reads = sum(
                1
                for u in life.uses
                if (not u.on_device)
                and u.reads
                and any(
                    d.stage < u.stage and d.writes for d in device_uses
                )
            )
            hyb_d2h_c += 1 + host_reads
            hyb_d2h_b += nbytes * (1 + host_reads)

        # COMPILED: same residency but the zero-fill stage-in is elided,
        # and only first-stage stage-ins are exposed (everything else
        # prefetches or drains behind compute).
        bp = plan.buffers.get(life.label)
        elided = bp is not None and bp.first_touch == "elide"
        if not elided:
            comp_h2d_c += 1
            comp_h2d_b += nbytes
        comp_h2d_c += host_writes_between
        comp_h2d_b += nbytes * host_writes_between
        if life.device_written():
            host_reads = sum(
                1
                for u in life.uses
                if (not u.on_device)
                and u.reads
                and any(d.stage < u.stage and d.writes for d in device_uses)
            )
            comp_d2h_c += 1 + host_reads
            comp_d2h_b += nbytes * (1 + host_reads)

    m = transfer_model
    naive_s = _copy_seconds(m, naive_h2d_b, naive_h2d_c) + _copy_seconds(
        m, naive_d2h_b, naive_d2h_c
    )
    hyb_s = _copy_seconds(m, hyb_h2d_b, hyb_h2d_c) + _copy_seconds(
        m, hyb_d2h_b, hyb_d2h_c
    )
    # Exposed lower bound for compiled: stage-ins at the very first device
    # stage cannot hide behind compute (nothing runs yet), and the final
    # coalesced drain pays one latency plus whatever compute cannot cover
    # — model it as the drain of the largest single buffer.
    first_stage_sync_b = sum(
        plan.buffers[lbl].nbytes
        for sp in plan.stages[:1]
        for lbl in sp.stage_in_sync
        if lbl in plan.buffers
    )
    first_stage_sync_c = len(plan.stages[0].stage_in_sync) if plan.stages else 0
    tail_b = max(
        (bp.nbytes for bp in plan.buffers.values() if bp.drain_after is not None),
        default=0,
    )
    comp_s = _copy_seconds(m, first_stage_sync_b, first_stage_sync_c) + _copy_seconds(
        m, tail_b, 1 if tail_b else 0
    )

    def overhead(n: int) -> float:
        return n * launch_overhead_s

    return {
        "naive": MovementEstimate(
            "naive",
            naive_h2d_b,
            naive_d2h_b,
            naive_h2d_c,
            naive_d2h_c,
            naive_s,
            launches=eager_l,
            launch_seconds=overhead(eager_l),
        ),
        "hybrid": MovementEstimate(
            "hybrid",
            hyb_h2d_b,
            hyb_d2h_b,
            hyb_h2d_c,
            hyb_d2h_c,
            hyb_s,
            launches=eager_l,
            launch_seconds=overhead(eager_l),
        ),
        "compiled": MovementEstimate(
            "compiled",
            comp_h2d_b,
            comp_d2h_b,
            comp_h2d_c,
            comp_d2h_c,
            comp_s,
            launches=comp_l,
            launch_seconds=overhead(comp_l),
        ),
        # Megabatch keeps compiled's movement plan; its additional win is
        # the stacked-launch elision term.
        "megabatch": MovementEstimate(
            "megabatch",
            comp_h2d_b,
            comp_d2h_b,
            comp_h2d_c,
            comp_d2h_c,
            comp_s,
            launches=mb_l,
            launch_seconds=overhead(mb_l),
        ),
    }
