"""Performance model calibrated to the paper's evaluation.

The live pipelines in this reproduction run scaled-down problems on a
simulated device; absolute A100 timings cannot be measured here.  This
package provides the *calibrated analytic model* that regenerates the
paper's reported performance relations:

* :mod:`~repro.perfmodel.calibration` -- per-kernel CPU costs and GPU
  speedups (Fig 6), process-sweep speedup anchors (Fig 4), and the
  full-benchmark constants (Fig 5), all with citations to the paper text;
* :mod:`~repro.perfmodel.memory` -- the per-process device-memory
  footprint model that reproduces the out-of-memory points of Fig 4;
* :mod:`~repro.perfmodel.runtime_model` -- whole-run times as functions of
  implementation, process count, problem size, and MPS state.

Everything the model asserts is cross-checked against the paper's numbers
in ``EXPERIMENTS.md`` and in ``tests/test_perfmodel.py``.
"""

from .calibration import (
    ACCEL_DATA_CALIBRATION,
    AMDAHL_BOUND,
    FULL_BENCHMARK,
    KERNEL_CALIBRATION,
    SWEEP_PROCESS_COUNTS,
    KernelCalibration,
)
from .energy import NodePower, energy_per_run, full_benchmark_energy
from .memory import MemoryModel
from .movement import MovementEstimate, estimate_movement
from .runtime_model import (
    Backend,
    accel_runtime,
    cpu_runtime,
    full_benchmark_runtimes,
    per_kernel_times,
    process_sweep,
    speedup_anchor,
)

__all__ = [
    "KernelCalibration",
    "KERNEL_CALIBRATION",
    "ACCEL_DATA_CALIBRATION",
    "FULL_BENCHMARK",
    "AMDAHL_BOUND",
    "SWEEP_PROCESS_COUNTS",
    "MemoryModel",
    "MovementEstimate",
    "estimate_movement",
    "NodePower",
    "energy_per_run",
    "full_benchmark_energy",
    "Backend",
    "cpu_runtime",
    "accel_runtime",
    "speedup_anchor",
    "process_sweep",
    "full_benchmark_runtimes",
    "per_kernel_times",
]
