"""Math substrates: quaternion algebra and interval algebra.

These mirror TOAST's ``qarray`` and ``intervals`` modules, which the ported
kernels depend on for detector pointing expansion and for the
(detector x interval x sample) triple-loop structure.
"""

from . import quaternion as qa
from .intervals import Interval, IntervalList

__all__ = ["qa", "quaternion", "Interval", "IntervalList"]

from . import quaternion  # noqa: E402  (re-export under its full name too)
