"""Sample-interval algebra, mirroring TOAST's ``IntervalList``.

Most ported kernels run a triple loop over (detectors, intervals, samples);
intervals are half-open spans ``[first, last)`` of sample indices with
varying lengths.  The varying length is exactly what forced the padding
workarounds discussed in the paper (static shapes in JAX, collapse-friendly
loops in OpenMP), so the algebra here is a first-class substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["Interval", "IntervalList", "regular_intervals"]


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open span of samples ``[first, last)``."""

    first: int
    last: int

    def __post_init__(self) -> None:
        if self.first < 0 or self.last < self.first:
            raise ValueError(f"invalid interval [{self.first}, {self.last})")

    def __len__(self) -> int:
        return self.last - self.first

    def overlaps(self, other: "Interval") -> bool:
        return self.first < other.last and other.first < self.last

    def contains(self, sample: int) -> bool:
        return self.first <= sample < self.last


class IntervalList:
    """An ordered, non-overlapping list of :class:`Interval` spans.

    Construction normalizes the input: spans are sorted, merged when they
    touch or overlap, and empty spans are dropped.
    """

    def __init__(self, spans: Iterable[Tuple[int, int]] = ()):  # noqa: D401
        normalized: List[Interval] = []
        for first, last in sorted((int(f), int(l)) for f, l in spans):
            iv = Interval(first, last)
            if len(iv) == 0:
                continue
            if normalized and iv.first <= normalized[-1].last:
                prev = normalized[-1]
                normalized[-1] = Interval(prev.first, max(prev.last, iv.last))
            else:
                normalized.append(iv)
        self._spans: List[Interval] = normalized

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._spans)

    def __getitem__(self, idx: int) -> Interval:
        return self._spans[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalList):
            return NotImplemented
        return self._spans == other._spans

    def __repr__(self) -> str:
        inner = ", ".join(f"[{iv.first},{iv.last})" for iv in self._spans)
        return f"IntervalList({inner})"

    # -- conversions ---------------------------------------------------------

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(starts, stops)`` as int64 arrays -- the kernel ABI."""
        starts = np.array([iv.first for iv in self._spans], dtype=np.int64)
        stops = np.array([iv.last for iv in self._spans], dtype=np.int64)
        return starts, stops

    @classmethod
    def from_arrays(cls, starts: Sequence[int], stops: Sequence[int]) -> "IntervalList":
        if len(starts) != len(stops):
            raise ValueError("starts and stops must have the same length")
        return cls(zip(starts, stops))

    def mask(self, n_samples: int) -> np.ndarray:
        """Boolean mask of length ``n_samples``, True inside any interval."""
        out = np.zeros(n_samples, dtype=bool)
        for iv in self._spans:
            if iv.first >= n_samples:
                break
            out[iv.first : min(iv.last, n_samples)] = True
        return out

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "IntervalList":
        """Inverse of :meth:`mask`: contiguous True runs become intervals."""
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 1:
            raise ValueError("mask must be one-dimensional")
        padded = np.concatenate(([False], mask, [False]))
        edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
        starts = edges[0::2]
        stops = edges[1::2]
        return cls(zip(starts.tolist(), stops.tolist()))

    # -- measures ------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Total number of samples covered."""
        return sum(len(iv) for iv in self._spans)

    @property
    def max_length(self) -> int:
        """Length of the longest interval -- the static padding size used by
        the jax and omp kernel implementations."""
        return max((len(iv) for iv in self._spans), default=0)

    # -- set algebra -----------------------------------------------------------

    def union(self, other: "IntervalList") -> "IntervalList":
        return IntervalList(
            [(iv.first, iv.last) for iv in self._spans]
            + [(iv.first, iv.last) for iv in other._spans]
        )

    def intersection(self, other: "IntervalList") -> "IntervalList":
        out: List[Tuple[int, int]] = []
        i = j = 0
        a, b = self._spans, other._spans
        while i < len(a) and j < len(b):
            lo = max(a[i].first, b[j].first)
            hi = min(a[i].last, b[j].last)
            if lo < hi:
                out.append((lo, hi))
            if a[i].last < b[j].last:
                i += 1
            else:
                j += 1
        return IntervalList(out)

    def invert(self, n_samples: int) -> "IntervalList":
        """Complement within ``[0, n_samples)``."""
        out: List[Tuple[int, int]] = []
        cursor = 0
        for iv in self._spans:
            if iv.first >= n_samples:
                break
            if iv.first > cursor:
                out.append((cursor, iv.first))
            cursor = max(cursor, iv.last)
        if cursor < n_samples:
            out.append((cursor, n_samples))
        return IntervalList(out)

    def shift(self, offset: int) -> "IntervalList":
        """Translate every interval by ``offset`` samples."""
        return IntervalList((iv.first + offset, iv.last + offset) for iv in self._spans)

    # -- time-domain construction -----------------------------------------------

    @classmethod
    def from_time_ranges(
        cls,
        times: np.ndarray,
        ranges: Sequence[Tuple[float, float]],
    ) -> "IntervalList":
        """Sample intervals covering time spans ``[t0, t1)``.

        ``times`` must be non-decreasing sample timestamps; each time range
        maps onto the half-open sample span whose timestamps fall inside
        it.  This is how TOAST turns schedule entries into the interval
        lists the kernels iterate over.
        """
        times = np.asarray(times, dtype=np.float64)
        if times.ndim != 1:
            raise ValueError("times must be one-dimensional")
        if len(times) > 1 and np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        spans = []
        for t0, t1 in ranges:
            if t1 < t0:
                raise ValueError(f"time range ({t0}, {t1}) is inverted")
            first = int(np.searchsorted(times, t0, side="left"))
            last = int(np.searchsorted(times, t1, side="left"))
            spans.append((first, last))
        return cls(spans)

    def time_ranges(self, times: np.ndarray) -> List[Tuple[float, float]]:
        """The timestamp spans ``(times[first], times[last-1])`` per interval."""
        times = np.asarray(times, dtype=np.float64)
        out = []
        for iv in self._spans:
            if iv.last > len(times):
                raise ValueError("interval exceeds the timestamp array")
            out.append((float(times[iv.first]), float(times[iv.last - 1])))
        return out


def regular_intervals(
    n_samples: int,
    interval_length: int,
    gap_length: int = 0,
    start: int = 0,
) -> IntervalList:
    """Build evenly spaced intervals, as a scan schedule would.

    Intervals of ``interval_length`` samples separated by ``gap_length``
    samples, starting at ``start``, truncated to ``n_samples``.
    """
    if interval_length <= 0:
        raise ValueError("interval_length must be positive")
    if gap_length < 0:
        raise ValueError("gap_length must be non-negative")
    spans = []
    first = start
    step = interval_length + gap_length
    while first < n_samples:
        spans.append((first, min(first + interval_length, n_samples)))
        first += step
    return IntervalList(spans)
