"""Quaternion algebra on NumPy arrays, following TOAST's ``qarray`` module.

Conventions
-----------
* Quaternions are stored as ``(x, y, z, w)`` -- the scalar part last, as in
  TOAST (and scipy).
* All functions accept either a single quaternion of shape ``(4,)`` or an
  array of quaternions of shape ``(..., 4)`` and broadcast accordingly.
* Rotations are active: ``rotate(q, v)`` applies the rotation described by
  ``q`` to the vector ``v``.

The functions are fully vectorized; none of them loop in Python over the
sample axis (see the HPC guide: vectorize, avoid copies).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "amplitude",
    "normalize",
    "inv",
    "mult",
    "rotate",
    "rotate_zaxis",
    "rotate_xaxis",
    "from_axisangle",
    "to_axisangle",
    "from_angles",
    "to_angles",
    "to_position",
    "from_vectors",
    "slerp",
    "null_quat",
]

#: The identity quaternion in (x, y, z, w) order.
null_quat = np.array([0.0, 0.0, 0.0, 1.0])


def _check_quat(q: np.ndarray) -> np.ndarray:
    q = np.asarray(q, dtype=np.float64)
    if q.shape[-1] != 4:
        raise ValueError(f"quaternion arrays must have a trailing axis of 4, got {q.shape}")
    return q


def amplitude(q: np.ndarray) -> np.ndarray:
    """Euclidean norm of each quaternion."""
    q = _check_quat(q)
    return np.sqrt(np.sum(q * q, axis=-1))


def normalize(q: np.ndarray) -> np.ndarray:
    """Return unit quaternions; raises on zero-norm input."""
    q = _check_quat(q)
    norm = amplitude(q)
    if np.any(norm == 0):
        raise ValueError("cannot normalize a zero quaternion")
    return q / norm[..., np.newaxis]


def inv(q: np.ndarray) -> np.ndarray:
    """Inverse of unit quaternions (the conjugate)."""
    q = _check_quat(q)
    out = q.copy()
    out[..., :3] *= -1.0
    return out


def mult(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Hamilton product ``p * q`` with broadcasting over leading axes."""
    p = _check_quat(p)
    q = _check_quat(q)
    px, py, pz, pw = p[..., 0], p[..., 1], p[..., 2], p[..., 3]
    qx, qy, qz, qw = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    out = np.empty(np.broadcast(p, q).shape, dtype=np.float64)
    out[..., 0] = pw * qx + px * qw + py * qz - pz * qy
    out[..., 1] = pw * qy - px * qz + py * qw + pz * qx
    out[..., 2] = pw * qz + px * qy - py * qx + pz * qw
    out[..., 3] = pw * qw - px * qx - py * qy - pz * qz
    return out


def rotate(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate 3-vectors ``v`` by unit quaternions ``q``.

    Uses the expanded ``v' = v + 2 r x (r x v + w v)`` form, which needs no
    temporary quaternion products.
    """
    q = _check_quat(q)
    v = np.asarray(v, dtype=np.float64)
    if v.shape[-1] != 3:
        raise ValueError(f"vectors must have a trailing axis of 3, got {v.shape}")
    r = q[..., :3]
    w = q[..., 3:4]
    t = 2.0 * np.cross(r, v)
    return v + w * t + np.cross(r, t)


def rotate_zaxis(q: np.ndarray) -> np.ndarray:
    """Rotate the unit z axis: cheaper closed form used by pointing kernels."""
    q = _check_quat(q)
    x, y, z, w = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    out = np.empty(q.shape[:-1] + (3,), dtype=np.float64)
    out[..., 0] = 2.0 * (x * z + w * y)
    out[..., 1] = 2.0 * (y * z - w * x)
    out[..., 2] = 1.0 - 2.0 * (x * x + y * y)
    return out


def rotate_xaxis(q: np.ndarray) -> np.ndarray:
    """Rotate the unit x axis: used to recover detector orientation."""
    q = _check_quat(q)
    x, y, z, w = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    out = np.empty(q.shape[:-1] + (3,), dtype=np.float64)
    out[..., 0] = 1.0 - 2.0 * (y * y + z * z)
    out[..., 1] = 2.0 * (x * y + w * z)
    out[..., 2] = 2.0 * (x * z - w * y)
    return out


def from_axisangle(axis: np.ndarray, angle: np.ndarray) -> np.ndarray:
    """Quaternion for a rotation of ``angle`` radians about unit ``axis``."""
    axis = np.asarray(axis, dtype=np.float64)
    angle = np.asarray(angle, dtype=np.float64)
    if axis.shape[-1] != 3:
        raise ValueError(f"axes must have a trailing axis of 3, got {axis.shape}")
    half = 0.5 * angle
    s = np.sin(half)
    shape = np.broadcast(axis[..., 0], angle).shape + (4,)
    out = np.empty(shape, dtype=np.float64)
    out[..., :3] = axis * s[..., np.newaxis] if s.ndim else axis * s
    out[..., 3] = np.cos(half)
    return out


def to_axisangle(q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`from_axisangle`; returns ``(axis, angle)``.

    For the identity rotation the axis is the z axis by convention.
    """
    q = normalize(q)
    w = np.clip(q[..., 3], -1.0, 1.0)
    angle = 2.0 * np.arccos(w)
    s = np.sqrt(np.maximum(1.0 - w * w, 0.0))
    tiny = s < 1.0e-12
    safe = np.where(tiny, 1.0, s)
    axis = q[..., :3] / safe[..., np.newaxis]
    default = np.zeros(axis.shape, dtype=np.float64)
    default[..., 2] = 1.0
    axis = np.where(tiny[..., np.newaxis], default, axis)
    return axis, angle


def from_angles(theta: np.ndarray, phi: np.ndarray, pa: np.ndarray) -> np.ndarray:
    """Build pointing quaternions from spherical angles.

    ``theta`` is the colatitude, ``phi`` the longitude, and ``pa`` the
    position (orientation) angle about the line of sight.  The rotation is
    ``Rz(phi) * Ry(theta) * Rz(pa)``, which maps the z axis onto the
    direction ``(theta, phi)``.
    """
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    pa = np.asarray(pa, dtype=np.float64)
    zaxis = np.array([0.0, 0.0, 1.0])
    yaxis = np.array([0.0, 1.0, 0.0])
    qphi = from_axisangle(zaxis, phi)
    qtheta = from_axisangle(yaxis, theta)
    qpa = from_axisangle(zaxis, pa)
    return mult(qphi, mult(qtheta, qpa))


def to_angles(q: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`from_angles`; returns ``(theta, phi, pa)``.

    The position angle is measured from the local meridian direction to the
    rotated x axis, following the IAU convention used by TOAST's
    ``stokes_weights`` kernels.
    """
    q = normalize(q)
    direction = rotate_zaxis(q)
    orient = rotate_xaxis(q)

    z = np.clip(direction[..., 2], -1.0, 1.0)
    theta = np.arccos(z)
    phi = np.arctan2(direction[..., 1], direction[..., 0])

    # Project the orientation vector onto the local (e_theta, e_phi) basis:
    # pa = atan2(o . e_phi, o . e_theta).  In the compact forms below,
    # pa_y = sin(theta) * (o . e_phi) and pa_x = -sin(theta) * (o . e_theta).
    dx, dy, dz = direction[..., 0], direction[..., 1], direction[..., 2]
    ox, oy, oz = orient[..., 0], orient[..., 1], orient[..., 2]
    pa_y = oy * dx - ox * dy
    pa_x = oz * (dx * dx + dy * dy) - dz * (ox * dx + oy * dy)
    # At the poles dx=dy=0 and the meridian is degenerate; fall back to the
    # x-y components of the orientation vector there.
    polar = (dx * dx + dy * dy) < 1.0e-24
    pa = np.where(
        polar,
        np.arctan2(oy, ox),
        np.arctan2(pa_y, -pa_x),
    )
    return theta, phi, pa


def to_position(q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return only ``(theta, phi)`` -- cheaper than :func:`to_angles`."""
    q = normalize(q)
    direction = rotate_zaxis(q)
    z = np.clip(direction[..., 2], -1.0, 1.0)
    theta = np.arccos(z)
    phi = np.arctan2(direction[..., 1], direction[..., 0])
    return theta, phi


def from_vectors(v1: np.ndarray, v2: np.ndarray) -> np.ndarray:
    """Shortest-arc rotation taking unit vector ``v1`` to unit vector ``v2``."""
    v1 = np.asarray(v1, dtype=np.float64)
    v2 = np.asarray(v2, dtype=np.float64)
    dot = np.sum(v1 * v2, axis=-1)
    if np.any(dot < -1.0 + 1.0e-12):
        raise ValueError("from_vectors is undefined for antiparallel vectors")
    cross = np.cross(v1, v2)
    shape = np.broadcast(v1[..., 0], v2[..., 0]).shape + (4,)
    out = np.empty(shape, dtype=np.float64)
    out[..., :3] = cross
    out[..., 3] = 1.0 + dot
    return normalize(out)


def slerp(targets: np.ndarray, times: np.ndarray, quats: np.ndarray) -> np.ndarray:
    """Spherical linear interpolation of a quaternion time series.

    Parameters
    ----------
    targets:
        Times at which to interpolate, shape ``(m,)``; must lie within
        ``[times[0], times[-1]]``.
    times:
        Strictly increasing sample times, shape ``(n,)``.
    quats:
        Unit quaternions at ``times``, shape ``(n, 4)``.
    """
    targets = np.atleast_1d(np.asarray(targets, dtype=np.float64))
    times = np.asarray(times, dtype=np.float64)
    quats = _check_quat(quats)
    if times.ndim != 1 or quats.shape != (times.shape[0], 4):
        raise ValueError("slerp needs times (n,) and quats (n, 4)")
    if np.any(np.diff(times) <= 0):
        raise ValueError("slerp times must be strictly increasing")
    if np.any(targets < times[0]) or np.any(targets > times[-1]):
        raise ValueError("slerp targets outside the sampled time range")

    hi = np.searchsorted(times, targets, side="right")
    hi = np.clip(hi, 1, len(times) - 1)
    lo = hi - 1
    t0 = times[lo]
    t1 = times[hi]
    frac = (targets - t0) / (t1 - t0)

    q0 = quats[lo]
    q1 = quats[hi]
    # Take the short path on the 4-sphere.
    dot = np.sum(q0 * q1, axis=-1)
    q1 = np.where(dot[..., np.newaxis] < 0.0, -q1, q1)
    dot = np.abs(np.clip(dot, -1.0, 1.0))

    omega = np.arccos(dot)
    sin_omega = np.sin(omega)
    small = sin_omega < 1.0e-10
    safe_sin = np.where(small, 1.0, sin_omega)
    w0 = np.where(small, 1.0 - frac, np.sin((1.0 - frac) * omega) / safe_sin)
    w1 = np.where(small, frac, np.sin(frac * omega) / safe_sin)
    out = w0[..., np.newaxis] * q0 + w1[..., np.newaxis] * q1
    return normalize(out)
