"""Detector-data copy and delete operators (pipeline plumbing)."""

from __future__ import annotations

import numpy as np

from ..core.data import Data
from ..core.operator import Operator
from ..core.timing import function_timer

__all__ = ["Copy", "Delete"]


class Copy(Operator):
    """Duplicate a detdata key (e.g. keep the raw signal before weighting)."""

    def __init__(self, source: str, dest: str, name: str = "copy"):
        super().__init__(name=name)
        self.source = source
        self.dest = dest

    def requires(self):
        return {"shared": [], "detdata": [self.source], "meta": []}

    def provides(self):
        return {"shared": [], "detdata": [self.dest], "meta": []}

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        for ob in data.obs:
            src = ob.detdata[self.source]
            if self.dest in ob.detdata:
                if ob.detdata[self.dest].shape != src.shape:
                    raise ValueError(
                        f"cannot copy {self.source!r} over {self.dest!r}: shape mismatch"
                    )
                ob.detdata[self.dest][:] = src
            else:
                ob.detdata[self.dest] = np.array(src, copy=True)


class Delete(Operator):
    """Drop detdata/shared/meta keys to release memory."""

    def __init__(self, detdata=(), shared=(), meta=(), name: str = "delete"):
        super().__init__(name=name)
        self.detdata = tuple(detdata)
        self.shared_keys = tuple(shared)
        self.meta_keys = tuple(meta)

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        for ob in data.obs:
            for key in self.detdata:
                ob.detdata.pop(key, None)
            for key in self.shared_keys:
                ob.shared.pop(key, None)
        for key in self.meta_keys:
            data.meta.pop(key, None)
