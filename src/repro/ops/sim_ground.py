"""Ground-based telescope scanning simulation.

The paper's intro motivates TOAST with ground experiments (CMB-S4, Simons
Observatory); the benchmark itself is the satellite workflow, but the
framework must serve both.  This operator simulates the ground pattern:
constant-elevation azimuth scans with turnarounds, the sky drifting
through the scan with Earth's rotation.

Interval structure follows TOAST's ground conventions: ``scan`` covers
constant-velocity sweeps, split into ``scan_left``/``scan_right`` by
direction, with ``turnaround`` spans flagged and excluded.
"""

from __future__ import annotations

import numpy as np

from ..core.data import Data
from ..core.observation import Observation
from ..core.operator import Operator
from ..core.timing import function_timer
from ..math import qa
from ..math.intervals import IntervalList
from ..utils.constants import DEG2RAD, TWOPI

__all__ = ["SimGround", "azimuth_sawtooth"]

#: Sidereal day in seconds (Earth rotation period).
SIDEREAL_DAY_S = 86164.0905


def azimuth_sawtooth(
    times: np.ndarray,
    az_min_deg: float,
    az_max_deg: float,
    scan_rate_deg_s: float,
    turnaround_s: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Back-and-forth azimuth motion with smooth turnarounds.

    Returns ``(az_rad, moving_right, in_turnaround)``.  The scan dwells
    ``turnaround_s`` at each end (modeled as a cosine-smoothed reversal,
    during which samples are flagged).
    """
    if az_max_deg <= az_min_deg:
        raise ValueError("az_max must exceed az_min")
    if scan_rate_deg_s <= 0 or turnaround_s < 0:
        raise ValueError("scan rate must be positive, turnaround non-negative")
    times = np.asarray(times, dtype=np.float64)
    t = times - times[0] if len(times) else times

    throw = az_max_deg - az_min_deg
    sweep_s = throw / scan_rate_deg_s
    period = 2.0 * (sweep_s + turnaround_s)
    phase = np.mod(t, period)

    az = np.empty_like(phase)
    right = np.zeros(phase.shape, dtype=bool)
    turn = np.zeros(phase.shape, dtype=bool)

    # Rightward sweep.
    m = phase < sweep_s
    az[m] = az_min_deg + scan_rate_deg_s * phase[m]
    right[m] = True
    # Right-end turnaround.
    m = (phase >= sweep_s) & (phase < sweep_s + turnaround_s)
    frac = (phase[m] - sweep_s) / max(turnaround_s, 1e-12)
    az[m] = az_max_deg - 0.0 * frac  # dwell at the end
    turn[m] = True
    # Leftward sweep.
    m = (phase >= sweep_s + turnaround_s) & (phase < 2 * sweep_s + turnaround_s)
    az[m] = az_max_deg - scan_rate_deg_s * (phase[m] - sweep_s - turnaround_s)
    # Left-end turnaround.
    m = phase >= 2 * sweep_s + turnaround_s
    az[m] = az_min_deg
    turn[m] = True

    return az * DEG2RAD, right, turn


class SimGround(Operator):
    """Create observations with ground-telescope pointing and intervals."""

    SHARED_FLAG_TURNAROUND = 2

    def __init__(
        self,
        focalplane,
        n_observations: int = 1,
        n_samples: int = 10000,
        az_min_deg: float = 40.0,
        az_max_deg: float = 70.0,
        el_deg: float = 50.0,
        scan_rate_deg_s: float = 1.0,
        turnaround_s: float = 2.0,
        site_latitude_deg: float = -23.0,
        name: str = "sim_ground",
    ):
        super().__init__(name=name)
        if n_observations < 1 or n_samples < 1:
            raise ValueError("need at least one observation and one sample")
        if not 0.0 < el_deg < 90.0:
            raise ValueError("elevation must be in (0, 90) degrees")
        self.focalplane = focalplane
        self.n_observations = n_observations
        self.n_samples = n_samples
        self.az_min_deg = az_min_deg
        self.az_max_deg = az_max_deg
        self.el_deg = el_deg
        self.scan_rate_deg_s = scan_rate_deg_s
        self.turnaround_s = turnaround_s
        self.site_latitude_deg = site_latitude_deg

    def provides(self):
        return {"shared": ["times", "boresight", "flags"], "detdata": [], "meta": []}

    def _boresight(self, times: np.ndarray, az: np.ndarray) -> np.ndarray:
        """Horizon pointing rotated into a sky frame by Earth rotation.

        The local frame (alt/az) drifts through the celestial frame at the
        sidereal rate, which is what sweeps the scan across the sky.
        """
        theta = (90.0 - self.el_deg) * DEG2RAD * np.ones_like(az)
        lst = TWOPI * times / SIDEREAL_DAY_S  # local sidereal angle
        phi = lst - az  # azimuth measured clockwise from north
        # Orientation fixed to the scan direction (no boresight rotation).
        return qa.from_angles(theta, phi, np.zeros_like(az))

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        rate = self.focalplane.sample_rate
        my_obs = data.comm.distribute_observations(self.n_observations)
        for iobs in my_obs:
            ob = Observation(
                self.focalplane, self.n_samples, name=f"ground_{iobs:04d}", uid=iobs
            )
            t0 = iobs * self.n_samples / rate
            times = t0 + np.arange(self.n_samples) / rate
            az, right, turn = azimuth_sawtooth(
                times,
                self.az_min_deg,
                self.az_max_deg,
                self.scan_rate_deg_s,
                self.turnaround_s,
            )
            ob.set_shared("times", times)
            ob.set_shared("boresight", self._boresight(times, az))

            flags = np.zeros(self.n_samples, dtype=np.uint8)
            flags[turn] |= self.SHARED_FLAG_TURNAROUND
            ob.set_shared("flags", flags)

            scanning = ~turn
            ob.set_intervals("scan", IntervalList.from_mask(scanning))
            ob.set_intervals("scan_left", IntervalList.from_mask(scanning & ~right))
            ob.set_intervals("scan_right", IntervalList.from_mask(scanning & right))
            ob.set_intervals("turnaround", IntervalList.from_mask(turn))

            data.obs.append(ob)
