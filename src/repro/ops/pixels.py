"""HEALPix pixelization operator (wraps ``pixels_healpix``)."""

from __future__ import annotations

import numpy as np

from ..core.data import Data
from ..core.dispatch import get_kernel
from ..core.operator import Operator
from ..core.timing import function_timer
from ..healpix import npix as healpix_npix

__all__ = ["PixelsHealpix"]


class PixelsHealpix(Operator):
    """Convert detector pointing quaternions to HEALPix pixel indices."""

    def __init__(
        self,
        nside: int = 64,
        nest: bool = True,
        quats: str = "quats",
        pixels: str = "pixels",
        shared_flags: str = "flags",
        shared_flag_mask: int = 1,
        view: str = "scan",
        name: str = "pixels_healpix",
    ):
        super().__init__(name=name)
        self.nside = nside
        self.nest = nest
        self.quats = quats
        self.pixels = pixels
        self.shared_flags = shared_flags
        self.shared_flag_mask = shared_flag_mask
        self.view = view

    @property
    def n_pix(self) -> int:
        return healpix_npix(self.nside)

    def kernel_bindings(self):
        return {
            "pixels_healpix": {
                "quats": self.quats,
                "pixels_out": self.pixels,
                "shared_flags": self.shared_flags,
            }
        }

    def ensure_outputs(self, data: Data) -> None:
        for ob in data.obs:
            ob.ensure_detdata(self.pixels, dtype=np.int64)

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        fn = get_kernel("pixels_healpix")
        for ob in data.obs:
            starts, stops = ob.interval_arrays(self.view)
            fn(
                quats=ob.detdata[self.quats],
                pixels_out=ob.detdata[self.pixels],
                nside=self.nside,
                nest=self.nest,
                starts=starts,
                stops=stops,
                shared_flags=ob.shared.get(self.shared_flags),
                mask=self.shared_flag_mask,
                accel=accel,
                use_accel=use_accel,
            )
