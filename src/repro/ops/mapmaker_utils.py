"""Map-domain accumulation operators.

``BuildNoiseWeighted`` wraps the ported kernel; ``CovarianceAndHits``
accumulates the per-pixel inverse covariance blocks and hit counts (one of
TOAST's >30 *unported* kernels -- it runs NumPy-only here, which is exactly
the Amdahl situation the paper describes).
"""

from __future__ import annotations

import numpy as np

from ..core.data import Data
from ..core.dispatch import get_kernel
from ..core.operator import Operator
from ..core.timing import function_timer

__all__ = ["BuildNoiseWeighted", "CovarianceAndHits"]


class BuildNoiseWeighted(Operator):
    """Accumulate noise-weighted timestreams into a map (``data[zmap]``)."""

    def __init__(
        self,
        zmap_key: str = "zmap",
        det_data: str = "signal",
        pixels: str = "pixels",
        weights: str = "weights",
        shared_flags: str = "flags",
        shared_flag_mask: int = 1,
        det_flags: str = "",
        det_flag_mask: int = 0,
        n_pix: int = 0,
        nnz: int = 3,
        view: str = "scan",
        use_det_weights: bool = True,
        name: str = "build_noise_weighted",
    ):
        super().__init__(name=name)
        if n_pix <= 0:
            raise ValueError("n_pix must be set to the map size")
        self.zmap_key = zmap_key
        self.det_data = det_data
        self.pixels = pixels
        self.weights = weights
        self.shared_flags = shared_flags
        self.shared_flag_mask = shared_flag_mask
        self.det_flags = det_flags
        self.det_flag_mask = det_flag_mask
        self.n_pix = n_pix
        self.nnz = nnz
        self.view = view
        #: When the timestream was already scaled by the NoiseWeight
        #: operator, set False so weights are not applied twice.
        self.use_det_weights = use_det_weights

    def kernel_bindings(self):
        # Binding order fixes the derived trait (and device staging) order:
        # signal first, then the geometry inputs, matching the original
        # hand-written traits.
        return {
            "build_noise_weighted": {
                "zmap": self.zmap_key,
                "tod": self.det_data,
                "pixels": self.pixels,
                "weights": self.weights,
                "shared_flags": self.shared_flags,
                "det_flags": self.det_flags or None,
            }
        }

    def ensure_outputs(self, data: Data) -> None:
        if self.zmap_key not in data:
            data[self.zmap_key] = np.zeros((self.n_pix, self.nnz))

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        zmap = data[self.zmap_key]
        fn = get_kernel("build_noise_weighted")
        mapped_here = False
        if use_accel and accel is not None and not accel.is_present(zmap):
            accel.target_enter_data(to=[zmap], labels={id(zmap): self.zmap_key})
            mapped_here = True
        try:
            for ob in data.obs:
                starts, stops = ob.interval_arrays(self.view)
                if self.use_det_weights:
                    det_scale = ob.focalplane.detector_weights()
                else:
                    det_scale = np.ones(ob.n_detectors)
                fn(
                    zmap=zmap,
                    pixels=ob.detdata[self.pixels],
                    weights=ob.detdata[self.weights],
                    tod=ob.detdata[self.det_data],
                    det_scale=det_scale,
                    starts=starts,
                    stops=stops,
                    shared_flags=ob.shared.get(self.shared_flags),
                    mask=self.shared_flag_mask,
                    det_flags=ob.detdata.get(self.det_flags) if self.det_flags else None,
                    det_mask=self.det_flag_mask,
                    accel=accel,
                    use_accel=use_accel,
                )
        finally:
            if mapped_here:
                # The map is an output: bring the accumulation home.
                accel.target_update_from(zmap)
                accel.target_exit_data(release=[zmap])

    def finalize(self, data: Data) -> None:
        # Sum partial maps across process groups.
        zmap = data[self.zmap_key]
        data[self.zmap_key] = data.comm.world.allreduce_array(zmap)


class CovarianceAndHits(Operator):
    """Accumulate hit counts and per-pixel inverse noise covariance.

    For each sample hitting pixel ``p`` with Stokes weights ``w`` and
    detector weight ``g``: ``cov[p] += g * w w^T`` (upper triangle) and
    ``hits[p] += 1``.

    In the paper these were among the >30 *unported* kernels bounding the
    speedup by Amdahl's law; this reproduction implements the paper's
    stated next step and ports them (``cov_accum_diag_hits`` /
    ``cov_accum_diag_invnpp``) in all four implementations.
    """

    def __init__(
        self,
        hits_key: str = "hits",
        cov_key: str = "inv_cov",
        pixels: str = "pixels",
        weights: str = "weights",
        n_pix: int = 0,
        nnz: int = 3,
        view: str = "scan",
        name: str = "covariance_and_hits",
    ):
        super().__init__(name=name)
        if n_pix <= 0:
            raise ValueError("n_pix must be set to the map size")
        self.hits_key = hits_key
        self.cov_key = cov_key
        self.pixels = pixels
        self.weights = weights
        self.n_pix = n_pix
        self.nnz = nnz
        self.n_cov = (nnz * (nnz + 1)) // 2
        self.view = view

    def kernel_bindings(self):
        return {
            "cov_accum_diag_hits": {
                "hits": self.hits_key,
                "pixels": self.pixels,
            },
            "cov_accum_diag_invnpp": {
                "invnpp": self.cov_key,
                "pixels": self.pixels,
                "weights": self.weights,
            },
        }

    def ensure_outputs(self, data: Data) -> None:
        if self.hits_key not in data:
            data[self.hits_key] = np.zeros(self.n_pix, dtype=np.int64)
        if self.cov_key not in data:
            data[self.cov_key] = np.zeros((self.n_pix, self.n_cov))

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        hits = data[self.hits_key]
        cov = data[self.cov_key]
        hits_fn = get_kernel("cov_accum_diag_hits")
        invnpp_fn = get_kernel("cov_accum_diag_invnpp")
        mapped_here = []
        if use_accel and accel is not None:
            for arr, label in ((hits, self.hits_key), (cov, self.cov_key)):
                if not accel.is_present(arr):
                    accel.target_enter_data(to=[arr], labels={id(arr): label})
                    mapped_here.append(arr)
        try:
            for ob in data.obs:
                starts, stops = ob.interval_arrays(self.view)
                hits_fn(
                    hits=hits,
                    pixels=ob.detdata[self.pixels],
                    starts=starts,
                    stops=stops,
                    accel=accel,
                    use_accel=use_accel,
                )
                invnpp_fn(
                    invnpp=cov,
                    pixels=ob.detdata[self.pixels],
                    weights=ob.detdata[self.weights],
                    det_scale=ob.focalplane.detector_weights(),
                    starts=starts,
                    stops=stops,
                    accel=accel,
                    use_accel=use_accel,
                )
        finally:
            for arr in mapped_here:
                accel.target_update_from(arr)
                accel.target_exit_data(release=[arr])

    def finalize(self, data: Data) -> None:
        data[self.hits_key] = data.comm.world.allreduce_array(data[self.hits_key])
        data[self.cov_key] = data.comm.world.allreduce_array(data[self.cov_key])
