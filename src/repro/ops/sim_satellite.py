"""Satellite scanning simulation (the benchmark's data generator).

"This benchmark workflow simulates the characteristic scanning motion of a
space-based CMB telescope" (§4): the boresight traces the classic
precession-plus-spin cycloid -- a spin axis precessing about the
anti-solar direction, with the boresight opened away from the spin axis --
plus a rotating half-wave plate, timestamps, shared flags, and scan
intervals.
"""

from __future__ import annotations

import numpy as np

from ..core.data import Data
from ..core.observation import Observation
from ..core.operator import Operator
from ..core.timing import function_timer
from ..healpix import npix as healpix_npix
from ..math import qa
from ..math.intervals import regular_intervals
from ..rng import gaussian, uniform01
from ..utils.constants import DEG2RAD, TWOPI

__all__ = ["SimSatellite", "create_fake_sky"]

_ZAXIS = np.array([0.0, 0.0, 1.0])
_YAXIS = np.array([0.0, 1.0, 0.0])


def satellite_boresight(
    times: np.ndarray,
    prec_period_s: float = 3600.0,
    spin_period_s: float = 60.0,
    prec_angle_deg: float = 45.0,
    spin_angle_deg: float = 45.0,
    orbit_period_s: float = 365.25 * 86400.0,
) -> np.ndarray:
    """Boresight attitude quaternions for the cycloid scan.

    ``q(t) = Rz(orbit) Rz(prec) Ry(prec_angle) Rz(spin) Ry(spin_angle)``:
    the spin axis precesses about the anti-solar direction, which itself
    drifts along the ecliptic with the yearly orbit.  One precession period
    covers the ring of colatitudes within ``prec_angle + spin_angle`` of
    the anti-solar axis (about half the sky for 45+45); the orbital drift
    completes full-sky coverage over the mission.
    """
    times = np.asarray(times, dtype=np.float64)
    orbit_phase = TWOPI * times / orbit_period_s
    prec_phase = TWOPI * times / prec_period_s
    spin_phase = TWOPI * times / spin_period_s

    q_orbit = qa.from_axisangle(_ZAXIS, orbit_phase)
    q_prec = qa.from_axisangle(_ZAXIS, prec_phase)
    q_prec_open = qa.from_axisangle(_YAXIS, prec_angle_deg * DEG2RAD)
    q_spin = qa.from_axisangle(_ZAXIS, spin_phase)
    q_spin_open = qa.from_axisangle(_YAXIS, spin_angle_deg * DEG2RAD)

    return qa.mult(
        q_orbit, qa.mult(qa.mult(q_prec, q_prec_open), qa.mult(q_spin, q_spin_open))
    )


def create_fake_sky(nside: int, nnz: int = 3, seed: int = 987) -> np.ndarray:
    """A synthetic I/Q/U sky map (smooth large-scale random field).

    Stands in for the "simulated sky" input of the benchmark; built from
    counter-based draws so every process generates the identical map.
    """
    n_pix = healpix_npix(nside)
    sky = np.empty((n_pix, nnz), dtype=np.float64)
    for k in range(nnz):
        amp = 1.0 if k == 0 else 0.05  # polarization is a few percent of T
        sky[:, k] = amp * gaussian(n_pix, key=(seed, k))
    return sky


class SimSatellite(Operator):
    """Create observations with satellite pointing and scan metadata.

    Populates shared ``times``, ``boresight``, ``hwp_angle``, and
    ``flags``; defines the ``scan`` interval list (science scans separated
    by short repointing gaps whose samples carry a shared flag).
    """

    SHARED_FLAG_REPOINT = 1

    def __init__(
        self,
        focalplane,
        n_observations: int = 1,
        n_samples: int = 10000,
        prec_period_s: float = 3600.0,
        spin_period_s: float = 60.0,
        prec_angle_deg: float = 45.0,
        spin_angle_deg: float = 45.0,
        hwp_rpm: float = 9.0,
        scan_samples: int = 2000,
        gap_samples: int = 50,
        flag_fraction: float = 0.002,
        name: str = "sim_satellite",
    ):
        super().__init__(name=name)
        if n_observations < 1 or n_samples < 1:
            raise ValueError("need at least one observation and one sample")
        self.focalplane = focalplane
        self.n_observations = n_observations
        self.n_samples = n_samples
        self.prec_period_s = prec_period_s
        self.spin_period_s = spin_period_s
        self.prec_angle_deg = prec_angle_deg
        self.spin_angle_deg = spin_angle_deg
        self.hwp_rpm = hwp_rpm
        self.scan_samples = scan_samples
        self.gap_samples = gap_samples
        self.flag_fraction = flag_fraction

    def provides(self):
        return {"shared": ["times", "boresight", "hwp_angle", "flags"], "detdata": [], "meta": []}

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        rate = self.focalplane.sample_rate
        # Distribute observations across process groups like TOAST does.
        my_obs = data.comm.distribute_observations(self.n_observations)
        for iobs in my_obs:
            ob = Observation(
                self.focalplane,
                self.n_samples,
                name=f"science_{iobs:04d}",
                uid=iobs,
            )
            t0 = iobs * self.n_samples / rate
            times = t0 + np.arange(self.n_samples) / rate
            ob.set_shared("times", times)
            ob.set_shared(
                "boresight",
                satellite_boresight(
                    times,
                    prec_period_s=self.prec_period_s,
                    spin_period_s=self.spin_period_s,
                    prec_angle_deg=self.prec_angle_deg,
                    spin_angle_deg=self.spin_angle_deg,
                ),
            )
            hwp_rate = self.hwp_rpm * TWOPI / 60.0
            ob.set_shared("hwp_angle", np.mod(hwp_rate * times, TWOPI))

            scans = regular_intervals(
                self.n_samples, self.scan_samples, gap_length=self.gap_samples
            )
            ob.set_intervals("scan", scans)

            # Shared flags: repointing gaps plus a sprinkle of glitches.
            flags = np.zeros(self.n_samples, dtype=np.uint8)
            flags[~scans.mask(self.n_samples)] |= self.SHARED_FLAG_REPOINT
            n_glitch = int(self.flag_fraction * self.n_samples)
            if n_glitch > 0:
                u = uniform01(n_glitch, key=(ob.uid, 0xF1A6))
                glitch = (u * self.n_samples).astype(np.int64)
                flags[glitch] |= self.SHARED_FLAG_REPOINT
            ob.set_shared("flags", flags)

            data.obs.append(ob)
