"""Noise-weighting operator (wraps ``noise_weight``)."""

from __future__ import annotations

import numpy as np

from ..core.data import Data
from ..core.dispatch import get_kernel
from ..core.operator import Operator
from ..core.timing import function_timer

__all__ = ["NoiseWeight"]


class NoiseWeight(Operator):
    """Scale timestreams by inverse-variance detector noise weights."""

    def __init__(
        self,
        det_data: str = "signal",
        view: str = "scan",
        name: str = "noise_weight",
    ):
        super().__init__(name=name)
        self.det_data = det_data
        self.view = view

    def kernel_bindings(self):
        return {"noise_weight": {"tod": self.det_data}}

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        fn = get_kernel("noise_weight")
        for ob in data.obs:
            starts, stops = ob.interval_arrays(self.view)
            weights = ob.focalplane.detector_weights()
            fn(
                tod=ob.detdata[self.det_data],
                det_weights=weights,
                starts=starts,
                stops=stops,
                accel=accel,
                use_accel=use_accel,
            )
