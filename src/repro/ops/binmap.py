"""Binned map solution: per-pixel solve of the accumulated linear system."""

from __future__ import annotations

import numpy as np

from ..core.data import Data
from ..core.operator import Operator
from ..core.timing import function_timer

__all__ = ["BinMap"]


class BinMap(Operator):
    """Solve ``m[p] = C[p]^{-1} z[p]`` per pixel.

    Inputs are the noise-weighted map (``zmap``) and the packed
    upper-triangle inverse covariance from :class:`CovarianceAndHits`.
    Ill-conditioned pixels (rcond below threshold) are set to zero.
    """

    def __init__(
        self,
        zmap_key: str = "zmap",
        cov_key: str = "inv_cov",
        map_key: str = "binned_map",
        rcond_threshold: float = 1.0e-8,
        name: str = "binmap",
    ):
        super().__init__(name=name)
        self.zmap_key = zmap_key
        self.cov_key = cov_key
        self.map_key = map_key
        self.rcond_threshold = rcond_threshold

    def requires(self):
        return {"shared": [], "detdata": [], "meta": [self.zmap_key, self.cov_key]}

    def provides(self):
        return {"shared": [], "detdata": [], "meta": [self.map_key]}

    @staticmethod
    def _unpack_triangle(cov: np.ndarray, nnz: int) -> np.ndarray:
        """Packed upper triangle (n_pix, n_tri) -> full (n_pix, nnz, nnz)."""
        n_pix = cov.shape[0]
        full = np.zeros((n_pix, nnz, nnz))
        c = 0
        for i in range(nnz):
            for j in range(i, nnz):
                full[:, i, j] = cov[:, c]
                full[:, j, i] = cov[:, c]
                c += 1
        return full

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        zmap = data[self.zmap_key]
        packed = data[self.cov_key]
        n_pix, nnz = zmap.shape
        full = self._unpack_triangle(packed, nnz)

        out = np.zeros_like(zmap)
        # Solve only where the block is well conditioned.
        diag_ok = full[:, 0, 0] > 0
        if np.any(diag_ok):
            blocks = full[diag_ok]
            # Batched eigendecomposition-based rcond screen.
            eigvals = np.linalg.eigvalsh(blocks)
            rcond = np.where(
                eigvals[:, -1] > 0, eigvals[:, 0] / eigvals[:, -1], 0.0
            )
            solvable = rcond > self.rcond_threshold
            idx = np.flatnonzero(diag_ok)[solvable]
            if len(idx):
                # Batched solve wants the RHS as stacked column vectors.
                out[idx] = np.linalg.solve(full[idx], zmap[idx][..., None])[..., 0]
        data[self.map_key] = out
