"""Stokes weights operator (wraps ``stokes_weights_I`` / ``_IQU``)."""

from __future__ import annotations

from ..core.data import Data
from ..core.dispatch import get_kernel
from ..core.operator import Operator
from ..core.timing import function_timer

__all__ = ["StokesWeights"]


class StokesWeights(Operator):
    """Compute detector response weights in mode "I" or "IQU"."""

    def __init__(
        self,
        mode: str = "IQU",
        quats: str = "quats",
        weights: str = "weights",
        hwp_angle: str = "hwp_angle",
        cal: float = 1.0,
        view: str = "scan",
        name: str = "stokes_weights",
    ):
        super().__init__(name=name)
        if mode not in ("I", "IQU"):
            raise ValueError(f"unknown Stokes mode {mode!r}")
        self.mode = mode
        self.quats = quats
        self.weights = weights
        self.hwp_angle = hwp_angle
        self.cal = cal
        self.view = view

    @property
    def nnz(self) -> int:
        return 1 if self.mode == "I" else 3

    def kernel_bindings(self):
        # Mode picks the kernel; traits derive from the bound spec.
        if self.mode == "I":
            return {"stokes_weights_I": {"weights_out": self.weights}}
        return {
            "stokes_weights_IQU": {
                "quats": self.quats,
                "hwp_angle": self.hwp_angle,
                "weights_out": self.weights,
            }
        }

    def ensure_outputs(self, data: Data) -> None:
        for ob in data.obs:
            if self.mode == "I":
                ob.ensure_detdata(self.weights)
            else:
                ob.ensure_detdata(self.weights, sample_shape=(3,))

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        for ob in data.obs:
            starts, stops = ob.interval_arrays(self.view)
            if self.mode == "I":
                fn = get_kernel("stokes_weights_I")
                fn(
                    weights_out=ob.detdata[self.weights],
                    cal=self.cal,
                    starts=starts,
                    stops=stops,
                    accel=accel,
                    use_accel=use_accel,
                )
            else:
                fn = get_kernel("stokes_weights_IQU")
                fn(
                    quats=ob.detdata[self.quats],
                    weights_out=ob.detdata[self.weights],
                    hwp_angle=ob.shared.get(self.hwp_angle),
                    epsilon=ob.focalplane.epsilon_array(),
                    cal=self.cal,
                    starts=starts,
                    stops=stops,
                    accel=accel,
                    use_accel=use_accel,
                )
