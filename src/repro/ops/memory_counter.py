"""Memory accounting operator (feeds the footprint model of Fig 4)."""

from __future__ import annotations

from ..core.data import Data
from ..core.operator import Operator
from ..core.timing import function_timer

__all__ = ["MemoryCounter"]


class MemoryCounter(Operator):
    """Tally the bytes held by observations and global products."""

    def __init__(self, name: str = "memory_counter"):
        super().__init__(name=name)
        self.total_bytes = 0

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        total = data.memory_bytes()
        for value in data.meta.values():
            nbytes = getattr(value, "nbytes", None)
            if nbytes is not None:
                total += int(nbytes)
        self.total_bytes = total
