"""Detector pointing expansion operator (wraps ``pointing_detector``)."""

from __future__ import annotations

from ..core.data import Data
from ..core.dispatch import get_kernel
from ..core.operator import Operator
from ..core.timing import function_timer

__all__ = ["PointingDetector"]


class PointingDetector(Operator):
    """Expand boresight attitude into per-detector pointing quaternions."""

    def __init__(
        self,
        boresight: str = "boresight",
        quats: str = "quats",
        shared_flags: str = "flags",
        shared_flag_mask: int = 1,
        view: str = "scan",
        name: str = "pointing_detector",
    ):
        super().__init__(name=name)
        self.boresight = boresight
        self.quats = quats
        self.shared_flags = shared_flags
        self.shared_flag_mask = shared_flag_mask
        self.view = view

    def kernel_bindings(self):
        # requires/provides/supports_accel derive from the KernelSpec.
        return {
            "pointing_detector": {
                "boresight": self.boresight,
                "shared_flags": self.shared_flags,
                "quats_out": self.quats,
            }
        }

    def ensure_outputs(self, data: Data) -> None:
        for ob in data.obs:
            ob.ensure_detdata(self.quats, sample_shape=(4,))

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        fn = get_kernel("pointing_detector")
        for ob in data.obs:
            starts, stops = ob.interval_arrays(self.view)
            fn(
                fp_quats=ob.focalplane.quat_array(),
                boresight=ob.shared[self.boresight],
                quats_out=ob.detdata[self.quats],
                starts=starts,
                stops=stops,
                shared_flags=ob.shared.get(self.shared_flags),
                mask=self.shared_flag_mask,
                accel=accel,
                use_accel=use_accel,
            )
