"""Simulate correlated detector noise (a CPU-side operator in TOAST).

Each detector's stream is synthesized from its analytic PSD by Fourier
colouring of counter-based Gaussian draws; the stream identity is
``(observation uid, detector index)``, so results are independent of the
process layout.
"""

from __future__ import annotations

import numpy as np

from ..core.data import Data
from ..core.operator import Operator
from ..core.timing import function_timer
from ..noise.sim import simulate_noise_timestream

__all__ = ["SimNoise"]


class SimNoise(Operator):
    """Add simulated noise to a detdata signal.

    ``common_mode`` mixes one shared stream into every detector of an
    observation (atmosphere- or bath-temperature-like correlated noise):
    ``tod_d = independent_d + common_mode * shared``.  TOAST models this
    through a noise mixing matrix; the single-column special case covers
    the satellite benchmark's needs.
    """

    #: Counter tag of the per-observation common-mode stream.
    COMMON_MODE_STREAM = 0xC0DE

    def __init__(
        self,
        det_data: str = "signal",
        noise_key: str = "noise_model",
        realization: int = 0,
        common_mode: float = 0.0,
        name: str = "sim_noise",
    ):
        super().__init__(name=name)
        if common_mode < 0:
            raise ValueError("common_mode strength must be non-negative")
        self.det_data = det_data
        self.noise_key = noise_key
        self.realization = realization
        self.common_mode = common_mode

    def requires(self):
        return {"shared": [], "detdata": [], "meta": [self.noise_key]}

    def provides(self):
        return {"shared": [], "detdata": [self.det_data], "meta": []}

    def ensure_outputs(self, data: Data) -> None:
        for ob in data.obs:
            ob.ensure_detdata(self.det_data)

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        for ob in data.obs:
            model = getattr(ob, self.noise_key, None)
            if model is None:
                raise RuntimeError(
                    f"observation {ob.name} has no noise model under "
                    f"{self.noise_key!r}; run DefaultNoiseModel first"
                )
            out = ob.ensure_detdata(self.det_data)
            rate = ob.focalplane.sample_rate
            common = None
            if self.common_mode > 0 and ob.detectors:
                common = simulate_noise_timestream(
                    ob.n_samples,
                    rate,
                    model.freqs,
                    model.psd(ob.detectors[0]),
                    key=(np.uint64(ob.uid), np.uint64(self.COMMON_MODE_STREAM)),
                    counter=(self.realization, 0),
                )
            for idet, det in enumerate(ob.detectors):
                tod = simulate_noise_timestream(
                    ob.n_samples,
                    rate,
                    model.freqs,
                    model.psd(det),
                    key=(np.uint64(ob.uid), np.uint64(idet)),
                    counter=(self.realization, 0),
                )
                out[idet] += tod
                if common is not None:
                    out[idet] += self.common_mode * common
