"""Template-offset (destriping) operators.

The offset template models correlated noise as a step function: one
amplitude per ``step_length`` samples per detector.  The three ported
kernels implement the template's three linear-algebra roles: synthesis
(``add_to_signal``), projection/adjoint (``project_signal``), and the
diagonal preconditioner of the resulting sparse system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..core.data import Data
from ..core.dispatch import get_kernel
from ..core.operator import Operator
from ..core.timing import function_timer

__all__ = [
    "TemplateOffsetState",
    "TemplateOffsetAddToSignal",
    "TemplateOffsetProjectSignal",
    "TemplateOffsetApplyPrecond",
]


@dataclass
class TemplateOffsetState:
    """Amplitude-vector layout for a dataset.

    One contiguous block of ``ceil(n_samples / step_length)`` amplitudes
    per (observation, detector), concatenated in observation order.
    """

    step_length: int
    n_amp: int = 0
    #: observation name -> (n_amp_per_det, offsets array of shape (n_det,))
    layout: Dict[str, Tuple[int, np.ndarray]] = field(default_factory=dict)
    #: diagonal preconditioner values (1 / (det_weight * step hits))
    offset_var: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @classmethod
    def build(cls, data: Data, step_length: int, view: str = "scan") -> "TemplateOffsetState":
        if step_length < 1:
            raise ValueError("step_length must be >= 1")
        state = cls(step_length=step_length)
        base = 0
        var: List[np.ndarray] = []
        for ob in data.obs:
            n_amp_det = (ob.n_samples + step_length - 1) // step_length
            offsets = base + np.arange(ob.n_detectors, dtype=np.int64) * n_amp_det
            state.layout[ob.name] = (n_amp_det, offsets)
            base += ob.n_detectors * n_amp_det

            # Hits per step (from the view's intervals) drive the
            # preconditioner: var = 1 / (w_det * hits).
            starts, stops = ob.interval_arrays(view)
            step_hits = np.zeros(n_amp_det, dtype=np.int64)
            for start, stop in zip(starts, stops):
                samples = np.arange(start, stop) // step_length
                np.add.at(step_hits, samples, 1)
            det_w = ob.focalplane.detector_weights()
            for w in det_w:
                with np.errstate(divide="ignore"):
                    v = 1.0 / (w * step_hits)
                v[~np.isfinite(v)] = 0.0
                var.append(v)
        state.n_amp = base
        state.offset_var = (
            np.concatenate(var) if var else np.zeros(0, dtype=np.float64)
        )
        return state

    def zeros(self) -> np.ndarray:
        return np.zeros(self.n_amp, dtype=np.float64)


class _TemplateOffsetBase(Operator):
    def __init__(self, state: TemplateOffsetState, amp_key: str, det_data: str, view: str, name: str):
        super().__init__(name=name)
        self.state = state
        self.amp_key = amp_key
        self.det_data = det_data
        self.view = view


class TemplateOffsetAddToSignal(_TemplateOffsetBase):
    """Synthesize the step function into the timestream: ``d += F a``."""

    def __init__(
        self,
        state: TemplateOffsetState,
        amp_key: str = "amplitudes",
        det_data: str = "signal",
        view: str = "scan",
        name: str = "template_offset_add_to_signal",
    ):
        super().__init__(state, amp_key, det_data, view, name)

    def kernel_bindings(self):
        return {
            "template_offset_add_to_signal": {
                "amplitudes": self.amp_key,
                "tod": self.det_data,
            }
        }

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        amplitudes = data[self.amp_key]
        fn = get_kernel("template_offset_add_to_signal")
        mapped_here = False
        if use_accel and accel is not None and not accel.is_present(amplitudes):
            accel.target_enter_data(
                to=[amplitudes], labels={id(amplitudes): self.amp_key}
            )
            mapped_here = True
        try:
            for ob in data.obs:
                _, offsets = self.state.layout[ob.name]
                starts, stops = ob.interval_arrays(self.view)
                fn(
                    step_length=self.state.step_length,
                    amplitudes=amplitudes,
                    amp_offsets=offsets,
                    tod=ob.detdata[self.det_data],
                    starts=starts,
                    stops=stops,
                    accel=accel,
                    use_accel=use_accel,
                )
        finally:
            if mapped_here:
                accel.target_exit_data(release=[amplitudes])


class TemplateOffsetProjectSignal(_TemplateOffsetBase):
    """Project the timestream onto the template: ``a += F^T d``."""

    def __init__(
        self,
        state: TemplateOffsetState,
        amp_key: str = "amplitudes",
        det_data: str = "signal",
        view: str = "scan",
        name: str = "template_offset_project_signal",
    ):
        super().__init__(state, amp_key, det_data, view, name)

    def kernel_bindings(self):
        return {
            "template_offset_project_signal": {
                "tod": self.det_data,
                "amplitudes": self.amp_key,
            }
        }

    def ensure_outputs(self, data: Data) -> None:
        if self.amp_key not in data:
            data[self.amp_key] = self.state.zeros()

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        amplitudes = data[self.amp_key]
        fn = get_kernel("template_offset_project_signal")
        mapped_here = False
        if use_accel and accel is not None and not accel.is_present(amplitudes):
            accel.target_enter_data(
                to=[amplitudes], labels={id(amplitudes): self.amp_key}
            )
            mapped_here = True
        try:
            for ob in data.obs:
                _, offsets = self.state.layout[ob.name]
                starts, stops = ob.interval_arrays(self.view)
                fn(
                    step_length=self.state.step_length,
                    tod=ob.detdata[self.det_data],
                    amplitudes=amplitudes,
                    amp_offsets=offsets,
                    starts=starts,
                    stops=stops,
                    accel=accel,
                    use_accel=use_accel,
                )
        finally:
            if mapped_here:
                accel.target_update_from(amplitudes)
                accel.target_exit_data(release=[amplitudes])

    def finalize(self, data: Data) -> None:
        amps = data[self.amp_key]
        data[self.amp_key] = data.comm.world.allreduce_array(amps)


class TemplateOffsetApplyPrecond(Operator):
    """Apply the diagonal preconditioner: ``a_out = M^-1 a_in``."""

    def __init__(
        self,
        state: TemplateOffsetState,
        amp_in_key: str = "amplitudes",
        amp_out_key: str = "amplitudes_precond",
        name: str = "template_offset_apply_diag_precond",
    ):
        super().__init__(name=name)
        self.state = state
        self.amp_in_key = amp_in_key
        self.amp_out_key = amp_out_key

    def kernel_bindings(self):
        return {
            "template_offset_apply_diag_precond": {
                "amp_in": self.amp_in_key,
                "amp_out": self.amp_out_key,
            }
        }

    def ensure_outputs(self, data: Data) -> None:
        if self.amp_out_key not in data:
            data[self.amp_out_key] = self.state.zeros()

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        fn = get_kernel("template_offset_apply_diag_precond")
        arrays = [self.state.offset_var, data[self.amp_in_key], data[self.amp_out_key]]
        names = ["offset_var", self.amp_in_key, self.amp_out_key]
        mapped_here = []
        if use_accel and accel is not None:
            for arr, label in zip(arrays, names):
                if not accel.is_present(arr):
                    accel.target_enter_data(to=[arr], labels={id(arr): label})
                    mapped_here.append(arr)
        try:
            fn(
                offset_var=arrays[0],
                amp_in=arrays[1],
                amp_out=arrays[2],
                accel=accel,
                use_accel=use_accel,
            )
        finally:
            for arr in mapped_here:
                accel.target_update_from(arr)
                accel.target_exit_data(release=[arr])
