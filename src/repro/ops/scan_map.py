"""Sky-map scanning operator (wraps ``scan_map``)."""

from __future__ import annotations

from ..core.data import Data
from ..core.dispatch import get_kernel
from ..core.operator import Operator
from ..core.timing import function_timer

__all__ = ["ScanMap"]


class ScanMap(Operator):
    """Sample a pixelized map (in ``data.meta``) into detector timestreams."""

    def __init__(
        self,
        map_key: str = "sky_map",
        det_data: str = "signal",
        pixels: str = "pixels",
        weights: str = "weights",
        data_scale: float = 1.0,
        zero: bool = False,
        subtract: bool = False,
        view: str = "scan",
        name: str = "scan_map",
    ):
        super().__init__(name=name)
        self.map_key = map_key
        self.det_data = det_data
        self.pixels = pixels
        self.weights = weights
        self.data_scale = data_scale
        self.zero = zero
        self.subtract = subtract
        self.view = view

    def kernel_bindings(self):
        return {
            "scan_map": {
                "map_data": self.map_key,
                "pixels": self.pixels,
                "weights": self.weights,
                "tod": self.det_data,
            }
        }

    def ensure_outputs(self, data: Data) -> None:
        for ob in data.obs:
            ob.ensure_detdata(self.det_data)

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        if self.map_key not in data:
            raise RuntimeError(f"no map under data[{self.map_key!r}]")
        sky = data[self.map_key]
        fn = get_kernel("scan_map")
        # The map is a pipeline-global object: stage it once per exec.
        mapped_here = False
        if use_accel and accel is not None and not accel.is_present(sky):
            accel.target_enter_data(to=[sky], labels={id(sky): self.map_key})
            mapped_here = True
        try:
            for ob in data.obs:
                starts, stops = ob.interval_arrays(self.view)
                fn(
                    map_data=sky,
                    pixels=ob.detdata[self.pixels],
                    weights=ob.detdata[self.weights],
                    tod=ob.detdata[self.det_data],
                    starts=starts,
                    stops=stops,
                    data_scale=self.data_scale,
                    should_zero=self.zero,
                    should_subtract=self.subtract,
                    accel=accel,
                    use_accel=use_accel,
                )
        finally:
            if mapped_here:
                accel.target_exit_data(release=[sky])
