"""Template-offset map-maker: the destriping solver of the benchmark.

Solves the offset-amplitude normal equations

    (F^T N^-1 F + R) a = F^T N^-1 d

by preconditioned conjugate gradient, where ``F`` is the step-function
synthesis operator (``template_offset_add_to_signal``), ``F^T`` its adjoint
(``template_offset_project_signal``), ``N^-1`` the diagonal noise weighting
(``noise_weight``), and the preconditioner the diagonal kernel.  The
destriped signal ``d - F a`` is then binned into the output map.

Every CG iteration exercises the ported kernels, so the solver runs fully
on the (simulated) accelerator when one is supplied.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.data import Data
from ..core.dispatch import get_kernel
from ..core.operator import Operator
from ..core.timing import function_timer
from ..utils.logging import get_logger
from .binmap import BinMap
from .mapmaker_utils import BuildNoiseWeighted, CovarianceAndHits
from .template_offset import TemplateOffsetState

__all__ = ["MapMaker"]


class MapMaker(Operator):
    """Destriping map-maker over the offset template."""

    def __init__(
        self,
        n_pix: int,
        nnz: int = 3,
        det_data: str = "signal",
        pixels: str = "pixels",
        weights: str = "weights",
        step_length: int = 256,
        max_iterations: int = 30,
        tolerance: float = 1.0e-10,
        regularization: float = 1.0e-3,
        view: str = "scan",
        map_key: str = "destriped_map",
        name: str = "mapmaker",
    ):
        super().__init__(name=name)
        self.n_pix = n_pix
        self.nnz = nnz
        self.det_data = det_data
        self.pixels = pixels
        self.weights = weights
        self.step_length = step_length
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.regularization = regularization
        self.view = view
        self.map_key = map_key
        self.n_iterations_run = 0
        self.final_residual = np.inf

    def requires(self):
        return {
            "shared": [],
            "detdata": [self.det_data, self.pixels, self.weights],
            "meta": [],
        }

    def provides(self):
        return {"shared": [], "detdata": [], "meta": [self.map_key, "amplitudes"]}

    def supports_accel(self) -> bool:
        return True

    # -- template linear algebra over the kernel dispatch --------------------

    def _project(self, data: Data, state, tod_key: str, accel, use_accel) -> np.ndarray:
        """``F^T N^-1 tod`` for the per-detector weighted timestream."""
        project = get_kernel("template_offset_project_signal")
        amps = state.zeros()
        for ob in data.obs:
            _, offsets = state.layout[ob.name]
            starts, stops = ob.interval_arrays(self.view)
            det_w = ob.focalplane.detector_weights()
            weighted = ob.detdata[tod_key] * det_w[:, None]
            project(
                step_length=state.step_length,
                tod=weighted,
                amplitudes=amps,
                amp_offsets=offsets,
                starts=starts,
                stops=stops,
                accel=None,
                use_accel=False,
            )
        return data.comm.world.allreduce_array(amps)

    def _synthesize(self, data: Data, state, amps: np.ndarray, tod_key: str) -> None:
        """``tod = F a`` into a scratch detdata key."""
        add = get_kernel("template_offset_add_to_signal")
        for ob in data.obs:
            _, offsets = state.layout[ob.name]
            starts, stops = ob.interval_arrays(self.view)
            scratch = ob.ensure_detdata(tod_key)
            scratch[:] = 0.0
            add(
                step_length=state.step_length,
                amplitudes=amps,
                amp_offsets=offsets,
                tod=scratch,
                starts=starts,
                stops=stops,
                accel=None,
                use_accel=False,
            )

    def _apply_lhs(self, data: Data, state, amps: np.ndarray) -> np.ndarray:
        """``(F^T N^-1 F + R) a``."""
        self._synthesize(data, state, amps, "_mm_scratch")
        out = self._project(data, state, "_mm_scratch", None, False)
        return out + self.regularization * amps

    def _apply_precond(self, state, amps: np.ndarray) -> np.ndarray:
        precond = get_kernel("template_offset_apply_diag_precond")
        out = np.zeros_like(amps)
        precond(
            offset_var=state.offset_var,
            amp_in=amps,
            amp_out=out,
            accel=None,
            use_accel=False,
        )
        return out

    # -- the solve --------------------------------------------------------------

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        log = get_logger("mapmaker")
        state = TemplateOffsetState.build(data, self.step_length, view=self.view)

        # RHS: b = F^T N^-1 d.
        b = self._project(data, state, self.det_data, accel, use_accel)

        # Preconditioned CG on the amplitude vector.
        a = state.zeros()
        r = b - self._apply_lhs(data, state, a)
        z = self._apply_precond(state, r)
        p = z.copy()
        rz = float(r @ z)
        b_norm = float(np.sqrt(b @ b)) or 1.0

        self.n_iterations_run = 0
        for it in range(self.max_iterations):
            ap = self._apply_lhs(data, state, p)
            p_ap = float(p @ ap)
            if p_ap <= 0:
                log.warning(f"CG breakdown at iteration {it} (p.Ap = {p_ap})")
                break
            alpha = rz / p_ap
            a += alpha * p
            r -= alpha * ap
            self.n_iterations_run = it + 1
            rel = float(np.sqrt(r @ r)) / b_norm
            log.debug(f"CG iteration {it}: relative residual {rel:.3e}")
            if rel < self.tolerance:
                break
            z = self._apply_precond(state, r)
            rz_new = float(r @ z)
            p = z + (rz_new / rz) * p
            rz = rz_new
        self.final_residual = float(np.sqrt(r @ r)) / b_norm
        data["amplitudes"] = a

        # Destriped signal: d - F a, accumulated into the output map.
        self._synthesize(data, state, a, "_mm_template")
        for ob in data.obs:
            clean = ob.ensure_detdata("_mm_clean")
            clean[:] = ob.detdata[self.det_data] - ob.detdata["_mm_template"]

        binner_inputs = Data(comm=data.comm)
        binner_inputs.obs = data.obs
        binner_inputs.meta = data.meta
        accum = BuildNoiseWeighted(
            zmap_key="_mm_zmap",
            det_data="_mm_clean",
            pixels=self.pixels,
            weights=self.weights,
            n_pix=self.n_pix,
            nnz=self.nnz,
            view=self.view,
        )
        cov = CovarianceAndHits(
            hits_key="hits",
            cov_key="inv_cov",
            pixels=self.pixels,
            weights=self.weights,
            n_pix=self.n_pix,
            nnz=self.nnz,
            view=self.view,
        )
        binner = BinMap(zmap_key="_mm_zmap", cov_key="inv_cov", map_key=self.map_key)
        accum.apply(binner_inputs)
        cov.apply(binner_inputs)
        binner.apply(binner_inputs)

        # Drop solver scratch timestreams.
        for ob in data.obs:
            for key in ("_mm_scratch", "_mm_template", "_mm_clean"):
                ob.detdata.pop(key, None)
        data.meta.pop("_mm_zmap", None)
