"""Operators: the modular pipeline steps of the framework.

Simulation operators generate the satellite benchmark data (scan strategy,
sky signal, correlated noise); processing operators wrap the ten ported
kernels; map-making operators assemble them into the binned-map and
template-offset (destriping) solvers the benchmark runs.
"""

from .. import kernels as _kernels  # noqa: F401  (populate the dispatch registry)
from .sim_satellite import SimSatellite, create_fake_sky
from .sim_ground import SimGround
from .noise_model import DefaultNoiseModel
from .sim_noise import SimNoise
from .noise_estim import NoiseEstim, PsdFit
from .pointing import PointingDetector
from .pixels import PixelsHealpix
from .stokes import StokesWeights
from .scan_map import ScanMap
from .noise_weight import NoiseWeight
from .mapmaker_utils import BuildNoiseWeighted, CovarianceAndHits
from .template_offset import (
    TemplateOffsetAddToSignal,
    TemplateOffsetApplyPrecond,
    TemplateOffsetProjectSignal,
    TemplateOffsetState,
)
from .binmap import BinMap
from .mapmaker import MapMaker
from .memory_counter import MemoryCounter
from .copy_delete import Copy, Delete

__all__ = [
    "SimSatellite",
    "SimGround",
    "create_fake_sky",
    "DefaultNoiseModel",
    "SimNoise",
    "NoiseEstim",
    "PsdFit",
    "PointingDetector",
    "PixelsHealpix",
    "StokesWeights",
    "ScanMap",
    "NoiseWeight",
    "BuildNoiseWeighted",
    "CovarianceAndHits",
    "TemplateOffsetState",
    "TemplateOffsetAddToSignal",
    "TemplateOffsetProjectSignal",
    "TemplateOffsetApplyPrecond",
    "BinMap",
    "MapMaker",
    "MemoryCounter",
    "Copy",
    "Delete",
]
