"""Noise estimation: fit the analytic PSD model back out of timestreams.

Closes the loop on the noise simulation -- estimate each detector's NET
and knee frequency from its data with a Welch periodogram and a
least-squares fit of the 1/f model.  TOAST ships the same capability
(``NoiseEstim``), used to build noise weights from real data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from scipy import optimize
from scipy import signal as sps

from ..core.data import Data
from ..core.operator import Operator
from ..core.timing import function_timer
from ..noise.psd import oof_psd

__all__ = ["NoiseEstim", "PsdFit"]


@dataclass(frozen=True)
class PsdFit:
    """Fitted 1/f parameters for one detector."""

    net: float
    fknee: float
    alpha: float

    def psd(self, freqs: np.ndarray) -> np.ndarray:
        return oof_psd(freqs, self.net, self.fknee, 1.0e-6, self.alpha)


def fit_oof_psd(freqs: np.ndarray, psd: np.ndarray) -> PsdFit:
    """Least-squares fit of ``NET^2 (f^alpha + fknee^alpha)/f^alpha``.

    Works in log space; the white level seeds from the top decade and the
    knee from where the spectrum crosses twice the white level.
    """
    freqs = np.asarray(freqs, dtype=np.float64)
    psd = np.asarray(psd, dtype=np.float64)
    good = (freqs > 0) & (psd > 0)
    f, p = freqs[good], psd[good]
    if len(f) < 8:
        raise ValueError("too few positive-frequency bins to fit a PSD")

    n_top = max(2, len(p) // 8)
    white = float(np.median(p[-n_top:]))
    above = f[p > 2.0 * white]
    knee0 = float(above.max()) if len(above) else float(f[1])

    def model(params):
        log_net2, log_fknee, alpha = params
        fknee = np.exp(log_fknee)
        return np.log(np.exp(log_net2) * (f**alpha + fknee**alpha) / f**alpha)

    def residuals(params):
        return model(params) - np.log(p)

    x0 = np.array([np.log(white), np.log(max(knee0, f[1])), 1.0])
    fit = optimize.least_squares(
        residuals, x0, bounds=([-30, np.log(f[0]) - 5, 0.2], [30, np.log(f[-1]), 4.0])
    )
    log_net2, log_fknee, alpha = fit.x
    return PsdFit(
        net=float(np.sqrt(np.exp(log_net2))),
        fknee=float(np.exp(log_fknee)),
        alpha=float(alpha),
    )


class NoiseEstim(Operator):
    """Estimate per-detector noise parameters from a detdata signal.

    Stores a dict ``{detector: PsdFit}`` on each observation under
    ``out_key`` plus the raw periodograms under ``out_key + "_psd"``.
    """

    def __init__(
        self,
        det_data: str = "signal",
        out_key: str = "noise_fit",
        nperseg: int = 1024,
        view: str = "scan",
        name: str = "noise_estim",
    ):
        super().__init__(name=name)
        self.det_data = det_data
        self.out_key = out_key
        self.nperseg = nperseg
        self.view = view

    def requires(self):
        return {"shared": [], "detdata": [self.det_data], "meta": []}

    def provides(self):
        return {"shared": [], "detdata": [], "meta": [self.out_key]}

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        for ob in data.obs:
            rate = ob.focalplane.sample_rate
            tod = ob.detdata[self.det_data]
            mask = (
                ob.intervals[self.view].mask(ob.n_samples)
                if self.view in ob.intervals
                else np.ones(ob.n_samples, dtype=bool)
            )
            fits: Dict[str, PsdFit] = {}
            psds: Dict[str, tuple] = {}
            for idet, det in enumerate(ob.detectors):
                stream = tod[idet][mask]
                nseg = min(self.nperseg, len(stream))
                freqs, psd = sps.welch(stream, fs=rate, nperseg=nseg)
                fits[det] = fit_oof_psd(freqs, psd)
                psds[det] = (freqs, psd)
            setattr(ob, self.out_key, fits)
            setattr(ob, self.out_key + "_psd", psds)
