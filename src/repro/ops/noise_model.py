"""Attach analytic noise models to observations."""

from __future__ import annotations

from ..core.data import Data
from ..core.operator import Operator
from ..core.timing import function_timer

__all__ = ["DefaultNoiseModel"]


class DefaultNoiseModel(Operator):
    """Store each observation's :class:`AnalyticNoiseModel` under a key.

    Downstream operators (noise simulation, noise weighting, map-making)
    read the model rather than recomputing PSDs.
    """

    def __init__(self, noise_key: str = "noise_model", name: str = "default_noise_model"):
        super().__init__(name=name)
        self.noise_key = noise_key

    def provides(self):
        return {"shared": [], "detdata": [], "meta": [self.noise_key]}

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        for ob in data.obs:
            model = ob.focalplane.noise_model()
            setattr(ob, self.noise_key, model)
