"""The active-tracer cell the instrumentation hooks read.

Kept in its own tiny module so hot call sites pay exactly one module
attribute load and one ``is None`` branch when tracing is disabled::

    from repro.obs import state as obs_state
    ...
    tr = obs_state.active
    if tr is not None:
        tr.device_event(...)

Mutate only through :func:`repro.obs.set_tracer` / :func:`repro.obs.tracing`.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .tracer import Tracer

#: The process-wide tracer; ``None`` means tracing is off (the default).
active: Optional["Tracer"] = None
