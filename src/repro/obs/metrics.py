"""Counters, gauges, and per-kernel aggregates.

The event buffer answers "what happened when"; this module answers "how
much in total" without replaying the buffer: hooks update these aggregates
live as events are emitted, so totals stay correct even after the bounded
event buffer starts dropping its oldest entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Counter", "Gauge", "KernelStats", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically accumulating sum (plus sample count and max)."""

    name: str
    value: float = 0.0
    samples: int = 0
    max_sample: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        self.samples += 1
        self.max_sample = max(self.max_sample, amount)


@dataclass
class Gauge:
    """A last-value metric that remembers its peak."""

    name: str
    value: float = 0.0
    peak: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = max(self.peak, value)
        self.updates += 1


@dataclass
class KernelStats:
    """Per-kernel launch aggregate (the Fig 6 unit of accounting).

    ``virtual_seconds`` is what the launch charged to the device's virtual
    clock under the kernel's region name, so it agrees exactly with
    ``VirtualClock.region_time(name)``.  ``device_seconds`` is device
    occupancy, which differs for async submits (the host is only charged
    the submission overhead).
    """

    name: str
    calls: int = 0
    launches: int = 0
    virtual_seconds: float = 0.0
    device_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.virtual_seconds / self.calls if self.calls else 0.0

    def record(self, charged_s: float, device_s: float, n_launches: int = 1) -> None:
        self.calls += 1
        self.launches += n_launches
        self.virtual_seconds += charged_s
        self.device_seconds += device_s
        self.max_seconds = max(self.max_seconds, charged_s)


@dataclass
class MetricsRegistry:
    """All live aggregates of one tracer."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    kernels: Dict[str, KernelStats] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).add(amount)

    def gauge_set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def record_launch(
        self, name: str, charged_s: float, device_s: float, n_launches: int = 1
    ) -> None:
        stats = self.kernels.get(name)
        if stats is None:
            stats = self.kernels[name] = KernelStats(name)
        stats.record(charged_s, device_s, n_launches)

    def kernel_rows(self) -> List[KernelStats]:
        """Kernel aggregates sorted by descending virtual time."""
        return sorted(self.kernels.values(), key=lambda k: -k.virtual_seconds)

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.kernels.clear()
