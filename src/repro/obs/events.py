"""Typed events on the device/host timelines.

The paper's team credits a CSV timing decorator as "the most significant
productivity boost throughout the project" (§3.2.3); this module is the
structured generalisation: every interesting runtime action (kernel
launch, transfer, allocation, sync, pipeline stage, compile) becomes one
:class:`Event` with a timestamp in a declared clock domain.  Device events
carry *virtual* seconds from the simulated device's
:class:`~repro.accel.clock.VirtualClock`, so an exported timeline shows
modeled GPU time rather than host wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

__all__ = [
    "EventType",
    "ClockDomain",
    "Event",
    "DEVICE_TIMELINE_TYPES",
    "RESILIENCE_TYPES",
    "SERVE_TYPES",
    "PARALLEL_TYPES",
    "STORE_TYPES",
]


class EventType(Enum):
    """What happened.  The first seven are the device-timeline stream."""

    #: A kernel executed on the device (sync or async submit).
    KERNEL_LAUNCH = "kernel_launch"
    #: Host -> device transfer.
    H2D = "h2d"
    #: Device -> host transfer.
    D2H = "d2h"
    #: Device pool allocation.
    ALLOC = "alloc"
    #: Device pool free.
    FREE = "free"
    #: The host blocked waiting for outstanding async device work.
    SYNC = "sync"
    #: One operator stage of a :class:`~repro.core.pipeline.Pipeline`.
    PIPELINE_STAGE = "pipeline_stage"
    #: OpenMP target-region / data-environment activity (ompshim).
    TARGET_REGION = "target_region"
    #: A jaxshim trace+compile (cache miss) or compile-cache hit.
    COMPILE = "compile"
    #: A kernel-dispatch resolution (requested vs resolved implementation).
    KERNEL_RESOLVE = "kernel_resolve"
    #: A generic host-side span (context manager / decorator API).
    SPAN = "span"
    #: The resilience plane injected a fault (site, kind, call number).
    FAULT_INJECTED = "fault_injected"
    #: A failed operation is being retried after a backoff.
    RETRY = "retry"
    #: Execution fell back to another implementation or to the host path.
    FALLBACK = "fallback"
    #: A per-kernel circuit breaker tripped open.
    BREAKER_OPEN = "breaker_open"
    #: A circuit breaker closed again after a successful half-open probe.
    BREAKER_CLOSE = "breaker_close"
    #: A device buffer was staged out to make room under memory pressure.
    EVICT = "evict"
    #: A pipeline checkpoint: host copies are current up to this stage.
    CHECKPOINT = "checkpoint"
    #: One client request against the serving plane (client-side span).
    SERVE_REQUEST = "serve_request"
    #: The broker resolved a product key to a handle on a node.
    SERVE_RESOLVE = "serve_resolve"
    #: A node ran the underlying pipeline to materialise a product.
    SERVE_PRODUCE = "serve_produce"
    #: A slice of a served array crossed back to a client.
    SERVE_SLICE = "serve_slice"
    #: A request joined an in-flight or cached pipeline run instead of
    #: starting its own (the multi-tenant sharing win).
    SERVE_COALESCE = "serve_coalesce"
    #: Admission control rejected a request (quota / client breaker).
    SERVE_REJECT = "serve_reject"
    #: The broker failed over a request from a dead node to a healthy one.
    SERVE_FAILOVER = "serve_failover"
    #: Elastic-pool worker lifecycle: spawn, exit, crash, respawn, revive.
    WORKER = "worker"
    #: Elastic-pool lease lifecycle: granted on dispatch, renewed by
    #: heartbeats, expired when a worker goes silent.
    LEASE = "lease"
    #: An expired or orphaned task was reassigned to another live worker.
    STEAL = "steal"
    #: A straggling task got a speculative duplicate on an idle worker
    #: (first completion wins; producer purity keeps the bytes identical).
    HEDGE = "hedge"
    #: The pipeline compiler produced (or replanned) a workflow schedule:
    #: attrs carry stage/buffer counts, elided transfers, fused groups.
    PLAN = "plan"
    #: Asynchronous copy work hidden behind compute: emitted at drain
    #: points with the seconds of transfer the host never waited for.
    OVERLAP = "overlap"
    #: A store chunk (or manifest) committed atomically to disk.
    STORE_COMMIT = "store_commit"
    #: The open-time scrub examined an observation's chunks.
    STORE_SCRUB = "store_scrub"
    #: A torn/truncated/bit-flipped chunk was moved to quarantine.
    STORE_QUARANTINE = "store_quarantine"
    #: A quarantined chunk was rebuilt from its registered producer.
    STORE_REGENERATE = "store_regenerate"


#: Event types that make up the device timeline proper.
DEVICE_TIMELINE_TYPES = (
    EventType.KERNEL_LAUNCH,
    EventType.H2D,
    EventType.D2H,
    EventType.ALLOC,
    EventType.FREE,
    EventType.SYNC,
)

#: Event types emitted by the resilience plane (``repro.resilience``):
#: every injected fault and every recovery decision is one of these.
RESILIENCE_TYPES = (
    EventType.FAULT_INJECTED,
    EventType.RETRY,
    EventType.FALLBACK,
    EventType.BREAKER_OPEN,
    EventType.BREAKER_CLOSE,
    EventType.EVICT,
    EventType.CHECKPOINT,
)

#: Event types emitted by the serving plane (``repro.serve``): one per
#: request-lifecycle step, so a trace shows broker routing, coalescing,
#: admission decisions, and node-side pipeline runs.
SERVE_TYPES = (
    EventType.SERVE_REQUEST,
    EventType.SERVE_RESOLVE,
    EventType.SERVE_PRODUCE,
    EventType.SERVE_SLICE,
    EventType.SERVE_COALESCE,
    EventType.SERVE_REJECT,
    EventType.SERVE_FAILOVER,
)

#: Event types emitted by the elastic worker pool (``repro.parallel``):
#: one per scheduler decision, so a trace shows which worker ran what,
#: which leases expired, and where work was stolen or hedged.
PARALLEL_TYPES = (
    EventType.WORKER,
    EventType.LEASE,
    EventType.STEAL,
    EventType.HEDGE,
)

#: Event types emitted by the observation store (``repro.store``): one per
#: durability decision, so a trace shows commits, scrub verdicts, and the
#: quarantine/regeneration path taken for damaged chunks.
STORE_TYPES = (
    EventType.STORE_COMMIT,
    EventType.STORE_SCRUB,
    EventType.STORE_QUARANTINE,
    EventType.STORE_REGENERATE,
)


class ClockDomain(Enum):
    """Which clock a timestamp was read from."""

    #: The simulated device's virtual clock (modeled seconds).
    DEVICE = "device"
    #: Host wall time (``time.perf_counter`` relative to tracer start).
    HOST = "host"


@dataclass(frozen=True)
class Event:
    """One timeline entry.

    ``ts`` is the start time in seconds within ``clock``'s domain; ``dur``
    is zero for instantaneous events.  ``attrs`` carries type-specific
    payload (byte counts, grid shapes, implementation names, ...).
    ``trace_id`` correlates every event a request touched across the
    broker, node, and kernel layers; ``None`` (the default) means the
    event was not recorded inside any request context, so existing call
    sites and CLI runs are untouched.
    """

    type: EventType
    name: str
    ts: float
    dur: float = 0.0
    clock: ClockDomain = ClockDomain.DEVICE
    attrs: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.ts < 0:
            raise ValueError(f"event timestamp must be non-negative, got {self.ts}")
        if self.dur < 0:
            raise ValueError(f"event duration must be non-negative, got {self.dur}")

    @property
    def end(self) -> float:
        return self.ts + self.dur

    def __repr__(self) -> str:
        extra = f", dur={self.dur:.3g}" if self.dur else ""
        return (
            f"Event({self.type.value}, {self.name!r}, ts={self.ts:.6g}{extra}, "
            f"{self.clock.value})"
        )
