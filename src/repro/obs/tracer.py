"""The span tracer: context managers, decorators, and the event buffer.

One :class:`Tracer` owns a bounded in-memory event buffer, a
:class:`~repro.obs.metrics.MetricsRegistry` of live aggregates, and a
thread-local stack of open :class:`Span`\\ s.  A :class:`NullTracer` with
the same surface is available for call sites that want an unconditional
object; the instrumentation hooks themselves check the module-global
active tracer (``None`` by default) so disabled tracing costs one
attribute load and one ``is None`` branch.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Callable, Iterator, List, Optional, Tuple

from .events import ClockDomain, Event, EventType
from .metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

#: Default event-buffer bound: large enough for a medium_scaled run,
#: small enough that a runaway loop cannot exhaust memory.
DEFAULT_MAX_EVENTS = 200_000


class Span:
    """One open host-side region; closed by its context manager."""

    __slots__ = ("name", "type", "t0", "t1", "attrs", "depth", "parent_name")

    def __init__(
        self,
        name: str,
        type: EventType,
        t0: float,
        attrs: dict,
        depth: int,
        parent_name: Optional[str],
    ):
        self.name = name
        self.type = type
        self.t0 = t0
        self.t1: Optional[float] = None
        self.attrs = attrs
        self.depth = depth
        self.parent_name = parent_name

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    @property
    def duration(self) -> float:
        if self.t1 is None:
            raise RuntimeError(f"span {self.name!r} is still open")
        return self.t1 - self.t0

    def __repr__(self) -> str:
        state = f"dur={self.duration:.3g}" if self.closed else "open"
        return f"Span({self.name!r}, depth={self.depth}, {state})"


class Tracer:
    """Collects events and aggregates; the heart of ``repro.obs``.

    Host timestamps are seconds since tracer construction (so host and
    device timelines both start near zero and overlay cleanly in a trace
    viewer).  Device events are emitted by the instrumentation hooks with
    timestamps read from a :class:`~repro.accel.clock.VirtualClock`.
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events <= 0:
            raise ValueError("event buffer bound must be positive")
        self.max_events = max_events
        self.events: List[Event] = []
        self.dropped = 0
        self.metrics = MetricsRegistry()
        self._epoch = time.perf_counter()
        self._local = threading.local()

    # -- clocks ----------------------------------------------------------------

    def now(self) -> float:
        """Host seconds since this tracer was created."""
        return time.perf_counter() - self._epoch

    # -- trace-id correlation --------------------------------------------------

    @property
    def current_trace_id(self) -> Optional[str]:
        """The trace id stamped onto events emitted by this thread."""
        return getattr(self._local, "trace_id", None)

    @contextmanager
    def trace_context(self, trace_id: Optional[str]) -> Iterator[None]:
        """Stamp every event this thread emits with ``trace_id``.

        Nested contexts override; exiting restores the outer id.  The
        serving plane opens one per request, so a client call can be
        followed broker -> node -> kernel through one correlation key;
        any other caller (a CLI run, a test) can open one too -- the
        mechanism is shared, not serve-specific.
        """
        previous = getattr(self._local, "trace_id", None)
        self._local.trace_id = trace_id
        try:
            yield
        finally:
            self._local.trace_id = previous

    # -- raw emission ----------------------------------------------------------

    def emit(self, event: Event) -> None:
        """Append an event, dropping the oldest beyond the buffer bound."""
        if event.trace_id is None:
            tid = getattr(self._local, "trace_id", None)
            if tid is not None:
                event = replace(event, trace_id=tid)
        if len(self.events) >= self.max_events:
            del self.events[0 : max(1, self.max_events // 10)]
            self.dropped += max(1, self.max_events // 10)
        self.events.append(event)

    def device_event(
        self,
        etype: EventType,
        name: str,
        ts: float,
        dur: float = 0.0,
        charged_s: Optional[float] = None,
        **attrs: Any,
    ) -> Event:
        """Emit a device-timeline event and update the live aggregates.

        ``ts``/``dur`` are virtual-clock seconds.  For kernel launches,
        ``charged_s`` is what the launch charged to the clock under the
        kernel's region name (defaults to ``dur``); the per-kernel
        aggregate accumulates exactly that, so metric totals agree with
        ``VirtualClock`` region accounting to the bit.
        """
        if charged_s is not None:
            attrs["charged_s"] = charged_s
        ev = Event(etype, name, ts=ts, dur=dur, clock=ClockDomain.DEVICE, attrs=attrs)
        self.emit(ev)

        m = self.metrics
        if etype is EventType.KERNEL_LAUNCH:
            m.record_launch(
                name,
                charged_s if charged_s is not None else dur,
                dur,
                int(attrs.get("n_launches", 1)),
            )
        elif etype is EventType.H2D:
            m.count("transfer.h2d_bytes", float(attrs.get("nbytes", 0)))
            m.count("transfer.h2d_seconds", dur)
        elif etype is EventType.D2H:
            m.count("transfer.d2h_bytes", float(attrs.get("nbytes", 0)))
            m.count("transfer.d2h_seconds", dur)
        elif etype is EventType.ALLOC:
            m.count("pool.allocs")
            if "pool_allocated_bytes" in attrs:
                m.gauge_set("pool.allocated_bytes", float(attrs["pool_allocated_bytes"]))
        elif etype is EventType.FREE:
            m.count("pool.frees")
            if "pool_allocated_bytes" in attrs:
                m.gauge_set("pool.allocated_bytes", float(attrs["pool_allocated_bytes"]))
        elif etype is EventType.SYNC:
            m.count("device.sync_seconds", dur)
        elif etype is EventType.FAULT_INJECTED:
            m.count("resilience.faults_injected")
        elif etype is EventType.RETRY:
            m.count("resilience.retries")
        elif etype is EventType.FALLBACK:
            m.count("resilience.fallbacks")
        elif etype is EventType.BREAKER_OPEN:
            m.count("resilience.breaker_opens")
        elif etype is EventType.BREAKER_CLOSE:
            m.count("resilience.breaker_closes")
        elif etype is EventType.EVICT:
            m.count("resilience.evictions")
            m.count("resilience.evicted_bytes", float(attrs.get("nbytes", 0)))
        elif etype is EventType.CHECKPOINT:
            m.count("resilience.checkpoints")
        elif etype is EventType.PLAN:
            m.count("pipeline.plans")
            m.count(
                "pipeline.transfers_elided", float(attrs.get("transfers_elided", 0))
            )
            m.count("pipeline.fused_groups", float(attrs.get("fused_groups", 0)))
            m.count("pipeline.launches_elided", float(attrs.get("launches_elided", 0)))
        elif etype is EventType.OVERLAP:
            m.count("pipeline.overlap_seconds", dur)
        return ev

    # -- spans -----------------------------------------------------------------

    def _span_stack(self) -> List[Span]:
        stack = getattr(self._local, "spans", None)
        if stack is None:
            stack = self._local.spans = []
        return stack

    @property
    def current_span(self) -> Optional[Span]:
        stack = self._span_stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(
        self, name: str, etype: EventType = EventType.SPAN, **attrs: Any
    ) -> Iterator[Span]:
        """Open a host-side region; emits one event when the block exits."""
        stack = self._span_stack()
        parent = stack[-1] if stack else None
        sp = Span(
            name,
            etype,
            t0=self.now(),
            attrs=dict(attrs),
            depth=len(stack),
            parent_name=parent.name if parent else None,
        )
        stack.append(sp)
        try:
            yield sp
        finally:
            stack.pop()
            sp.t1 = self.now()
            sp.attrs.setdefault("depth", sp.depth)
            if sp.parent_name:
                sp.attrs.setdefault("parent", sp.parent_name)
            self.emit(
                Event(
                    sp.type,
                    sp.name,
                    ts=sp.t0,
                    dur=sp.duration,
                    clock=ClockDomain.HOST,
                    attrs=sp.attrs,
                )
            )
            self.metrics.count(f"span.{sp.name}_seconds", sp.duration)

    def trace(
        self, fn: Optional[Callable] = None, *, name: Optional[str] = None
    ) -> Callable:
        """Decorator form of :meth:`span` (``@tracer.trace`` or
        ``@tracer.trace(name="...")``)."""
        if fn is None:
            return lambda f: self.trace(f, name=name)
        label = name or getattr(fn, "__qualname__", getattr(fn, "__name__", "anonymous"))

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with self.span(label):
                return fn(*args, **kwargs)

        return wrapper

    @contextmanager
    def stage(
        self, name: str, device_clock=None, **attrs: Any
    ) -> Iterator[None]:
        """A pipeline-stage region.

        When ``device_clock`` (a :class:`~repro.accel.clock.VirtualClock`)
        is given, the stage event lands on the *device* timeline spanning
        the virtual time the stage consumed; host wall time rides along as
        an attribute.  Without a clock it is a plain host span.
        """
        if device_clock is None:
            with self.span(name, etype=EventType.PIPELINE_STAGE, **attrs):
                yield
            return
        t0_host = self.now()
        t0_dev = device_clock.now
        try:
            yield
        finally:
            attrs["host_seconds"] = self.now() - t0_host
            self.emit(
                Event(
                    EventType.PIPELINE_STAGE,
                    name,
                    ts=t0_dev,
                    dur=device_clock.now - t0_dev,
                    clock=ClockDomain.DEVICE,
                    attrs=attrs,
                )
            )

    # -- queries ---------------------------------------------------------------

    def events_of(self, *types: EventType) -> List[Event]:
        wanted = set(types)
        return [e for e in self.events if e.type in wanted]

    def device_timeline(self) -> List[Event]:
        """Device-domain events in timestamp order."""
        devs = [e for e in self.events if e.clock is ClockDomain.DEVICE]
        return sorted(devs, key=lambda e: (e.ts, e.end))

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self.metrics.clear()

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self.events)} events, {self.dropped} dropped, "
            f"{len(self.metrics.kernels)} kernels)"
        )


class NullTracer:
    """A tracer whose every operation is a no-op.

    Mirrors the :class:`Tracer` surface so user code can call it
    unconditionally; the framework's own hooks never call it (they check
    for an active real tracer instead, which is cheaper still).
    """

    events: Tuple[()] = ()
    dropped = 0
    max_events = 0
    metrics = MetricsRegistry()
    current_span = None
    current_trace_id = None

    def now(self) -> float:
        return 0.0

    @contextmanager
    def trace_context(self, trace_id: Optional[str]) -> Iterator[None]:
        yield

    def emit(self, event: Event) -> None:
        pass

    def device_event(self, etype, name, ts, dur=0.0, charged_s=None, **attrs):
        return None

    @contextmanager
    def span(self, name: str, etype: EventType = EventType.SPAN, **attrs) -> Iterator[None]:
        yield None

    def trace(self, fn: Optional[Callable] = None, *, name: Optional[str] = None) -> Callable:
        if fn is None:
            return lambda f: f
        return fn

    @contextmanager
    def stage(self, name: str, device_clock=None, **attrs) -> Iterator[None]:
        yield None

    def events_of(self, *types: EventType) -> List[Event]:
        return []

    def device_timeline(self) -> List[Event]:
        return []

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


#: The shared disabled tracer (what :func:`repro.obs.current_tracer`
#: returns when tracing is off).
NULL_TRACER = NullTracer()
