"""Exporters: Chrome ``trace_event`` JSON, CSV, and rendered tables.

Three consumers, three formats:

* ``chrome://tracing`` / Perfetto load the JSON produced by
  :func:`write_chrome_trace` (the ``trace_event`` format's ``X``
  complete-events, ``i`` instants, and ``C`` counter series);
* the paper's comparison-spreadsheet flow consumes the CSV produced by
  :func:`write_kernel_metrics_csv`, whose columns match
  :meth:`repro.core.timing.GlobalTimers.dump_csv` so
  :func:`repro.core.timing.merge_timing_csv` merges both kinds;
* humans read :func:`render_summary`.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, List, Union

from ..utils.table import Table, format_bytes, format_seconds
from .events import ClockDomain, Event, EventType
from .tracer import Tracer

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "kernel_metrics_rows",
    "write_kernel_metrics_csv",
    "write_events_csv",
    "render_summary",
]

#: Synthetic process ids: pid 0 is the parent; events replayed from a
#: shard worker carry a ``worker`` attribute and land on that worker's own
#: pid track (ranks are small non-negative ints, so ``pid = rank + 1``).
_PID = 0
_TID_BY_DOMAIN = {ClockDomain.DEVICE: "device", ClockDomain.HOST: "host"}


def _event_pid(event: Event) -> int:
    worker = event.attrs.get("worker")
    if worker is None:
        return _PID
    return int(worker) + 1

#: Instantaneous device actions render as instants rather than 0-width slices.
_INSTANT_TYPES = {
    EventType.ALLOC,
    EventType.FREE,
    EventType.KERNEL_RESOLVE,
    EventType.FAULT_INJECTED,
    EventType.RETRY,
    EventType.FALLBACK,
    EventType.BREAKER_OPEN,
    EventType.BREAKER_CLOSE,
    EventType.EVICT,
    EventType.CHECKPOINT,
    EventType.SERVE_COALESCE,
    EventType.SERVE_REJECT,
    EventType.SERVE_FAILOVER,
}


def _chrome_one(event: Event) -> Dict[str, Any]:
    """One trace_event dict (ts/dur in microseconds, per the format)."""
    args = dict(event.attrs)
    if event.trace_id is not None:
        args["trace_id"] = event.trace_id
    out: Dict[str, Any] = {
        "name": event.name,
        "cat": event.type.value,
        "ts": event.ts * 1e6,
        "pid": _event_pid(event),
        "tid": _TID_BY_DOMAIN[event.clock],
        "args": args,
    }
    if event.dur > 0 and event.type not in _INSTANT_TYPES:
        out["ph"] = "X"
        out["dur"] = event.dur * 1e6
    else:
        out["ph"] = "i"
        out["s"] = "t"  # thread-scoped instant
    return out


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """All buffered events as trace_event dicts, plus counter series.

    Events are ordered by timestamp within each clock domain (the format
    does not require global ordering, but sorted output diffs cleanly).
    A ``pool.allocated_bytes`` counter track is synthesised from the
    ALLOC/FREE events that carry pool occupancy.
    """
    ordered = sorted(tracer.events, key=lambda e: (e.clock.value, e.ts, e.end))
    out = [_chrome_one(e) for e in ordered]
    for pid in sorted({_event_pid(e) for e in ordered}):
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "args": {"name": "parent" if pid == _PID else f"worker {pid - 1}"},
            }
        )
    for e in ordered:
        if e.type in (EventType.ALLOC, EventType.FREE) and "pool_allocated_bytes" in e.attrs:
            out.append(
                {
                    "name": "pool.allocated_bytes",
                    "cat": "memory",
                    "ph": "C",
                    "ts": e.ts * 1e6,
                    "pid": _PID,
                    "args": {"bytes": e.attrs["pool_allocated_bytes"]},
                }
            )
    return out


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The full JSON document for ``chrome://tracing`` / Perfetto."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "events_buffered": len(tracer.events),
            "events_dropped": tracer.dropped,
            "clock_note": "device track timestamps are modeled (virtual) seconds",
        },
    }


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer), indent=1))
    return path


def kernel_metrics_rows(tracer: Tracer) -> List[Dict[str, Any]]:
    """Per-kernel aggregate rows (descending virtual time)."""
    return [
        {
            "name": k.name,
            "total_seconds": k.virtual_seconds,
            "calls": k.calls,
            "mean_seconds": k.mean_seconds,
            "max_seconds": k.max_seconds,
            "launches": k.launches,
            "device_seconds": k.device_seconds,
        }
        for k in tracer.metrics.kernel_rows()
    ]


def write_kernel_metrics_csv(
    tracer: Tracer, path: Union[str, Path, io.TextIOBase]
) -> None:
    """Per-kernel CSV in the ``GlobalTimers.dump_csv`` column layout.

    The first five columns are exactly the timing-CSV schema, so the
    output drops straight into :func:`repro.core.timing.merge_timing_csv`
    next to host-timer dumps; two extra columns carry launch counts and
    device occupancy.
    """
    own = isinstance(path, (str, Path))
    fh = open(path, "w", newline="") if own else path
    try:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "name",
                "total_seconds",
                "calls",
                "mean_seconds",
                "max_seconds",
                "launches",
                "device_seconds",
            ]
        )
        for row in sorted(kernel_metrics_rows(tracer), key=lambda r: r["name"]):
            writer.writerow(
                [
                    row["name"],
                    row["total_seconds"],
                    row["calls"],
                    row["mean_seconds"],
                    row["max_seconds"],
                    row["launches"],
                    row["device_seconds"],
                ]
            )
    finally:
        if own:
            fh.close()


def write_events_csv(
    tracer: Tracer, path: Union[str, Path, io.TextIOBase]
) -> None:
    """Every buffered event as one CSV row, ``trace_id`` included.

    The per-kernel CSV aggregates away individual events; this export
    keeps them, one row each, so a spreadsheet (or ``grep``) can follow a
    single request's ``trace_id`` across clock domains and processes.
    Attributes are flattened into one ``key=value;...`` column to keep the
    schema fixed.
    """
    own = isinstance(path, (str, Path))
    fh = open(path, "w", newline="") if own else path
    try:
        writer = csv.writer(fh)
        writer.writerow(
            ["type", "name", "clock", "ts_seconds", "dur_seconds", "trace_id", "attrs"]
        )
        for e in sorted(tracer.events, key=lambda e: (e.clock.value, e.ts, e.end)):
            attrs = ";".join(f"{k}={e.attrs[k]}" for k in sorted(e.attrs))
            writer.writerow(
                [
                    e.type.value,
                    e.name,
                    e.clock.value,
                    repr(e.ts),
                    repr(e.dur),
                    e.trace_id if e.trace_id is not None else "",
                    attrs,
                ]
            )
    finally:
        if own:
            fh.close()


def render_summary(tracer: Tracer, title: str = "trace summary") -> str:
    """Human-readable digest: kernels, transfers, pool, event census."""
    m = tracer.metrics
    parts: List[str] = []

    kernels = Table(
        ["kernel", "virtual [s]", "calls", "launches", "mean [s]"],
        title=title + " — kernels (virtual device time)",
    )
    for k in m.kernel_rows():
        kernels.add_row([k.name, k.virtual_seconds, k.calls, k.launches, k.mean_seconds])
    parts.append(kernels.render())

    flows = Table(["measure", "value"], title=title + " — data movement & memory")
    h2d_b = m.counters.get("transfer.h2d_bytes")
    d2h_b = m.counters.get("transfer.d2h_bytes")
    h2d_s = m.counters.get("transfer.h2d_seconds")
    d2h_s = m.counters.get("transfer.d2h_seconds")
    pool = m.gauges.get("pool.allocated_bytes")
    sync = m.counters.get("device.sync_seconds")
    if h2d_b:
        flows.add_row(["H2D moved", f"{format_bytes(h2d_b.value)} in {h2d_b.samples} copies"])
    if h2d_s:
        flows.add_row(["H2D virtual time", format_seconds(h2d_s.value)])
    if d2h_b:
        flows.add_row(["D2H moved", f"{format_bytes(d2h_b.value)} in {d2h_b.samples} copies"])
    if d2h_s:
        flows.add_row(["D2H virtual time", format_seconds(d2h_s.value)])
    if pool:
        flows.add_row(["pool peak", format_bytes(pool.peak)])
    if sync:
        flows.add_row(["async sync wait", format_seconds(sync.value)])
    flows.add_row(["events buffered", len(tracer.events)])
    if tracer.dropped:
        flows.add_row(["events dropped", tracer.dropped])
    parts.append(flows.render())

    census: Dict[str, int] = {}
    for e in tracer.events:
        census[e.type.value] = census.get(e.type.value, 0) + 1
    kinds = Table(["event type", "count"], title=title + " — event census")
    for etype in sorted(census):
        kinds.add_row([etype, census[etype]])
    parts.append(kinds.render())

    return "\n\n".join(parts)
