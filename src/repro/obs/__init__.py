"""repro.obs — structured tracing & metrics with device-timeline export.

The paper's team called their CSV timing decorator "the most significant
productivity boost throughout the project" (§3.2.3).  This package is that
idea grown up: a span tracer with context-manager/decorator APIs, a typed
device-timeline event stream fed by hooks inside the dispatch, pipeline,
accelerator, jaxshim, and ompshim layers, live counters/gauges/per-kernel
aggregates, and exporters for Chrome ``trace_event`` JSON (Perfetto /
``chrome://tracing``), merge-friendly CSV, and rendered tables.

Tracing is **off by default and free when off**: every hook reads one
module attribute and branches on ``is None``.  Turn it on around a region::

    from repro import obs

    with obs.tracing() as tracer:
        pipeline.apply(data)
    obs.write_chrome_trace(tracer, "timeline.json")
    print(obs.render_summary(tracer))

Device events (kernel launches, transfers, pool traffic, syncs) carry
timestamps from the simulated device's virtual clock, so exported
timelines show modeled GPU time; host spans ride a separate track.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from .events import (
    DEVICE_TIMELINE_TYPES,
    RESILIENCE_TYPES,
    SERVE_TYPES,
    STORE_TYPES,
    ClockDomain,
    Event,
    EventType,
)
from .export import (
    chrome_trace_events,
    kernel_metrics_rows,
    render_summary,
    to_chrome_trace,
    write_chrome_trace,
    write_events_csv,
    write_kernel_metrics_csv,
)
from .metrics import Counter, Gauge, KernelStats, MetricsRegistry
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Event",
    "EventType",
    "ClockDomain",
    "DEVICE_TIMELINE_TYPES",
    "RESILIENCE_TYPES",
    "SERVE_TYPES",
    "STORE_TYPES",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "KernelStats",
    "MetricsRegistry",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "kernel_metrics_rows",
    "write_kernel_metrics_csv",
    "write_events_csv",
    "render_summary",
    "active_tracer",
    "current_tracer",
    "set_tracer",
    "tracing",
]

from . import state as _state


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled.

    Instrumentation hooks use the equivalent (but cheaper) direct check
    ``repro.obs.state.active is not None``.
    """
    return _state.active


def current_tracer() -> Union[Tracer, NullTracer]:
    """Like :func:`active_tracer` but never ``None`` (no-op when off)."""
    return _state.active if _state.active is not None else NULL_TRACER


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or with ``None`` remove) the process-wide tracer."""
    previous = _state.active
    _state.active = tracer
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Enable tracing for a ``with`` block; restores the prior state.

    A fresh :class:`Tracer` is created when none is passed; either way the
    active tracer is yielded so callers can export from it afterwards.
    """
    t = tracer if tracer is not None else Tracer()
    previous = set_tracer(t)
    try:
        yield t
    finally:
        set_tracer(previous)
