"""The satellite benchmark on live worker processes.

Each worker stands in for one modeled MPI rank: it simulates and processes
only its shard of observations (via :class:`~repro.parallel.sharding.
SubsetComm`) and writes one partial noise-weighted map **per observation**
into a shared-memory slab.  The parent reduces the per-observation
partials in fixed observation order, so the final map is bitwise identical
for any worker count -- the property the determinism tests pin down.

Simulation is layout-independent by construction: observation timestamps
derive from the global observation index and every random draw is
counter-based, keyed by ``(observation uid, stream)`` -- a worker produces
exactly the bytes a serial run produces for the same observation.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

import numpy as np

from .. import obs as _obs
from ..core import Data, ImplementationType, fake_hexagon_focalplane
from ..healpix import npix as healpix_npix
from ..mpi.simworld import SimWorld
from ..obs import state as obs_state
from ..ops import DefaultNoiseModel, SimNoise, SimSatellite, create_fake_sky
from .elastic import ElasticAborted, ElasticConfig, ElasticPool, TaskCheckpoint
from .engine import CRASH_EXIT_CODE, ProcessEngine
from .sharding import SubsetComm
from .shm import SharedSlab, SlabSpec

__all__ = [
    "satellite_shard_worker",
    "satellite_task_runner",
    "run_parallel_satellite",
]

#: Stokes components accumulated by the benchmark pipeline.
_NNZ = 3


def _process_one_observation(
    iobs: int,
    size,
    implementation: ImplementationType,
    realization: int,
    sky: np.ndarray,
    plan: str = "eager",
) -> np.ndarray:
    """Simulate + process one observation; return its partial zmap."""
    from ..workflows.satellite import satellite_processing_pipeline

    data = make_satellite_data_shard(size, [iobs], realization=realization, sky=sky)
    pipe = satellite_processing_pipeline(
        size.nside, implementation=implementation, plan=plan
    )
    pipe.apply(data)
    return data["zmap"]


def make_satellite_data_shard(
    size,
    obs_indices: List[int],
    realization: int = 0,
    sky: Optional[np.ndarray] = None,
) -> Data:
    """The benchmark dataset restricted to a fixed set of observations."""
    focalplane = fake_hexagon_focalplane(
        n_pixels=size.n_pixels,
        sample_rate=50.0,
        net=1.0,
        fknee=0.05,
    )
    data = Data(comm=SubsetComm(obs_indices))
    sim = SimSatellite(
        focalplane,
        n_observations=size.n_observations,
        n_samples=size.n_samples,
        scan_samples=max(128, size.n_samples // 8),
        gap_samples=max(8, size.n_samples // 128),
    )
    sim.apply(data)
    DefaultNoiseModel().apply(data)
    if sky is None:
        sky = create_fake_sky(size.nside, nnz=_NNZ, seed=realization + 11)
    data["sky_map"] = sky
    SimNoise(realization=realization).apply(data)
    return data


def satellite_shard_worker(
    rank: int,
    obs_indices: List[int],
    size,
    implementation: ImplementationType,
    realization: int,
    slab_spec: SlabSpec,
    plan: str = "eager",
    crash: bool = False,
) -> Dict[str, Any]:
    """One worker's shard: per-observation partial maps into the slab.

    Runs under its own :class:`~repro.obs.tracer.Tracer`; the recorded
    events travel back over the result pipe and are merged into the
    parent's trace tagged with this worker's rank.  With ``crash=True``
    the process dies after its first observation -- partial slab writes
    and all -- exactly like an OOM-killed rank.
    """
    slab = SharedSlab.attach(slab_spec)
    t0 = time.perf_counter()
    with _obs.tracing() as tracer:
        sky = create_fake_sky(size.nside, nnz=_NNZ, seed=realization + 11)
        for count, iobs in enumerate(obs_indices):
            with tracer.span(f"shard_obs_{iobs:04d}", rank=rank, obs=iobs):
                slab.array("zmap")[iobs] = _process_one_observation(
                    iobs, size, implementation, realization, sky, plan
                )
            if crash and count == 0:
                import os

                os._exit(CRASH_EXIT_CODE)
    slab.close()
    return {
        "rank": rank,
        "n_obs": len(obs_indices),
        "seconds": time.perf_counter() - t0,
        "events": list(tracer.events),
    }


#: Per-worker-process cache for the elastic task runner: attach the slab
#: and synthesise the input sky once per (segment, realization), not once
#: per stolen/hedged task.
_ELASTIC_CTX: Dict[Any, Any] = {}


def satellite_task_runner(
    wid: int,
    iobs: int,
    size,
    implementation: ImplementationType,
    realization: int,
    slab_spec: SlabSpec,
    plan: str = "eager",
) -> None:
    """One elastic task: one observation's partial map into the slab.

    The pure-producer contract that makes stealing and hedging safe: this
    function's only output is slot ``iobs`` of the shared slab, and its
    bytes are a function of ``(iobs, size, implementation, realization)``
    alone -- never of ``wid`` or scheduling -- so duplicate executions
    overwrite the slot with identical bytes.
    """
    key = (slab_spec.shm_name, realization)
    ctx = _ELASTIC_CTX.get(key)
    if ctx is None:
        slab = SharedSlab.attach(slab_spec)
        sky = create_fake_sky(size.nside, nnz=_NNZ, seed=realization + 11)
        _ELASTIC_CTX[key] = ctx = (slab, sky)
    slab, sky = ctx
    tr = obs_state.active
    if tr is not None:
        with tr.span(f"shard_obs_{iobs:04d}", rank=wid, obs=iobs):
            slab.array("zmap")[iobs] = _process_one_observation(
                iobs, size, implementation, realization, sky, plan
            )
    else:
        slab.array("zmap")[iobs] = _process_one_observation(
            iobs, size, implementation, realization, sky, plan
        )


def satellite_task_cleanup() -> None:
    """Close cached slab mappings (runs in each worker before exit)."""
    for slab, _ in _ELASTIC_CTX.values():
        slab.close()
    _ELASTIC_CTX.clear()


def run_parallel_satellite(
    size,
    implementation: ImplementationType = ImplementationType.NUMPY,
    n_procs: int = 1,
    realization: int = 0,
    world: Optional[SimWorld] = None,
    engine: Optional[ProcessEngine] = None,
    scheduler: str = "elastic",
    elastic_config: Optional[ElasticConfig] = None,
    checkpoint: Optional[TaskCheckpoint] = None,
    abort_after_commits: Optional[int] = None,
    plan: str = "eager",
) -> Dict[str, Any]:
    """The Figure 4 measurement: the benchmark across live processes.

    ``scheduler="elastic"`` (the default) runs per-observation tasks on
    the work-stealing :class:`~repro.parallel.elastic.ElasticPool`;
    ``scheduler="static"`` (or passing ``engine``) keeps the original
    one-shard-per-rank :class:`ProcessEngine`.  Both reduce the same
    per-observation slab slots in fixed observation order, so the two
    schedulers -- and every steal/hedge schedule within the elastic one --
    produce bitwise-identical maps.

    ``checkpoint`` makes completed observations durable: their slots are
    seeded from the store and skipped on resume, and every elastic commit
    saves its slot back.  ``abort_after_commits`` models a mid-ensemble
    kill (raises :class:`~repro.parallel.elastic.ElasticAborted`).
    """
    if world is None:
        world = SimWorld(n_nodes=1, procs_per_node=n_procs)
    if engine is not None:
        scheduler = "static"
    if scheduler not in ("elastic", "static"):
        raise ValueError(f"unknown scheduler {scheduler!r}: elastic or static")
    n_obs = size.n_observations
    n_pix = healpix_npix(size.nside)

    wall0 = time.perf_counter()
    with SharedSlab.create({"zmap": ((n_obs, n_pix, _NNZ), np.float64)}) as slab:
        if scheduler == "static":
            out = _run_static(
                size, implementation, realization, world, engine, slab, plan
            )
        else:
            out = _run_elastic(
                size,
                implementation,
                realization,
                n_procs,
                slab,
                elastic_config,
                checkpoint,
                abort_after_commits,
                plan,
            )
        # Fixed-order reduction over observations: the sum is independent
        # of how observations were packed onto workers.
        zmap = np.zeros((n_pix, _NNZ), dtype=np.float64)
        for iobs in range(n_obs):
            zmap += slab.array("zmap")[iobs]
    wall = time.perf_counter() - wall0

    tr = obs_state.active
    if tr is not None:
        tr.metrics.gauge_set("parallel.workers", float(out["n_workers"]))
        tr.metrics.count(
            "parallel.worker_recoveries", float(len(out["recovered_ranks"]))
        )

    out.update(
        zmap=zmap,
        wall_seconds=wall,
        world=world.describe(),
        scheduler=scheduler,
    )
    return out


def _run_static(
    size, implementation, realization, world, engine, slab, plan="eager"
) -> Dict[str, Any]:
    """The original one-shard-per-rank path on :class:`ProcessEngine`."""
    if engine is None:
        engine = ProcessEngine()
    shards = world.worker_layout(size.n_observations)
    outcomes = engine.map_shards(
        satellite_shard_worker,
        shards,
        args=(size, implementation, realization, slab.spec, plan),
    )
    return {
        "n_workers": len(shards),
        "start_method": engine.start_method,
        "worker_seconds": {o.rank: o.result["seconds"] for o in outcomes},
        "recovered_ranks": [o.rank for o in outcomes if o.recovered],
        "crash_injected_ranks": [o.rank for o in outcomes if o.crash_injected],
    }


def _run_elastic(
    size,
    implementation,
    realization,
    n_procs,
    slab,
    config,
    checkpoint,
    abort_after_commits,
    plan="eager",
) -> Dict[str, Any]:
    """Per-observation tasks on the work-stealing elastic pool."""
    n_obs = size.n_observations
    todo = list(range(n_obs))
    resumed: List[int] = []
    if checkpoint is not None:
        for iobs in list(todo):
            if iobs in checkpoint:
                slab.array("zmap")[iobs] = checkpoint.load(iobs)
                resumed.append(iobs)
        todo = [iobs for iobs in todo if iobs not in checkpoint]

    n_workers = max(1, min(n_procs, len(todo))) if todo else 0
    if not todo:
        return {
            "n_workers": 0,
            "start_method": None,
            "worker_seconds": {},
            "recovered_ranks": [],
            "crash_injected_ranks": [],
            "resumed_tasks": resumed,
            "elastic": {"counters": {}, "committed": 0},
        }

    def on_commit(iobs: int) -> None:
        if checkpoint is not None:
            checkpoint.save(iobs, slab.array("zmap")[iobs])

    pool = ElasticPool(
        satellite_task_runner,
        args=(size, implementation, realization, slab.spec, plan),
        n_workers=n_workers,
        config=config,
        worker_cleanup=satellite_task_cleanup,
    )
    try:
        report = pool.run(
            todo, on_commit=on_commit, abort_after_commits=abort_after_commits
        )
    finally:
        # The inline-recovery lane runs tasks in *this* process and caches
        # a slab attachment; close it before the owner unlinks the segment.
        satellite_task_cleanup()
    return {
        "n_workers": n_workers,
        "start_method": pool.start_method,
        "worker_seconds": report.worker_seconds,
        "recovered_ranks": list(report.recovered_workers),
        "crash_injected_ranks": list(report.crash_armed),
        "resumed_tasks": resumed,
        "elastic": {
            "counters": dict(report.counters),
            "committed": len(report.committed),
            "workers_spawned": report.workers_spawned,
        },
    }
