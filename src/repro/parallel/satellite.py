"""The satellite benchmark on live worker processes.

Each worker stands in for one modeled MPI rank: it simulates and processes
only its shard of observations (via :class:`~repro.parallel.sharding.
SubsetComm`) and writes one partial noise-weighted map **per observation**
into a shared-memory slab.  The parent reduces the per-observation
partials in fixed observation order, so the final map is bitwise identical
for any worker count -- the property the determinism tests pin down.

Simulation is layout-independent by construction: observation timestamps
derive from the global observation index and every random draw is
counter-based, keyed by ``(observation uid, stream)`` -- a worker produces
exactly the bytes a serial run produces for the same observation.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

import numpy as np

from .. import obs as _obs
from ..core import Data, ImplementationType, fake_hexagon_focalplane
from ..healpix import npix as healpix_npix
from ..mpi.simworld import SimWorld
from ..obs import state as obs_state
from ..ops import DefaultNoiseModel, SimNoise, SimSatellite, create_fake_sky
from .engine import CRASH_EXIT_CODE, ProcessEngine
from .sharding import SubsetComm
from .shm import SharedSlab, SlabSpec

__all__ = ["satellite_shard_worker", "run_parallel_satellite"]

#: Stokes components accumulated by the benchmark pipeline.
_NNZ = 3


def _process_one_observation(
    iobs: int,
    size,
    implementation: ImplementationType,
    realization: int,
    sky: np.ndarray,
) -> np.ndarray:
    """Simulate + process one observation; return its partial zmap."""
    from ..workflows.satellite import satellite_processing_pipeline

    data = make_satellite_data_shard(size, [iobs], realization=realization, sky=sky)
    pipe = satellite_processing_pipeline(size.nside, implementation=implementation)
    pipe.apply(data)
    return data["zmap"]


def make_satellite_data_shard(
    size,
    obs_indices: List[int],
    realization: int = 0,
    sky: Optional[np.ndarray] = None,
) -> Data:
    """The benchmark dataset restricted to a fixed set of observations."""
    focalplane = fake_hexagon_focalplane(
        n_pixels=size.n_pixels,
        sample_rate=50.0,
        net=1.0,
        fknee=0.05,
    )
    data = Data(comm=SubsetComm(obs_indices))
    sim = SimSatellite(
        focalplane,
        n_observations=size.n_observations,
        n_samples=size.n_samples,
        scan_samples=max(128, size.n_samples // 8),
        gap_samples=max(8, size.n_samples // 128),
    )
    sim.apply(data)
    DefaultNoiseModel().apply(data)
    if sky is None:
        sky = create_fake_sky(size.nside, nnz=_NNZ, seed=realization + 11)
    data["sky_map"] = sky
    SimNoise(realization=realization).apply(data)
    return data


def satellite_shard_worker(
    rank: int,
    obs_indices: List[int],
    size,
    implementation: ImplementationType,
    realization: int,
    slab_spec: SlabSpec,
    crash: bool = False,
) -> Dict[str, Any]:
    """One worker's shard: per-observation partial maps into the slab.

    Runs under its own :class:`~repro.obs.tracer.Tracer`; the recorded
    events travel back over the result pipe and are merged into the
    parent's trace tagged with this worker's rank.  With ``crash=True``
    the process dies after its first observation -- partial slab writes
    and all -- exactly like an OOM-killed rank.
    """
    slab = SharedSlab.attach(slab_spec)
    t0 = time.perf_counter()
    with _obs.tracing() as tracer:
        sky = create_fake_sky(size.nside, nnz=_NNZ, seed=realization + 11)
        for count, iobs in enumerate(obs_indices):
            with tracer.span(f"shard_obs_{iobs:04d}", rank=rank, obs=iobs):
                slab.array("zmap")[iobs] = _process_one_observation(
                    iobs, size, implementation, realization, sky
                )
            if crash and count == 0:
                import os

                os._exit(CRASH_EXIT_CODE)
    slab.close()
    return {
        "rank": rank,
        "n_obs": len(obs_indices),
        "seconds": time.perf_counter() - t0,
        "events": list(tracer.events),
    }


def run_parallel_satellite(
    size,
    implementation: ImplementationType = ImplementationType.NUMPY,
    n_procs: int = 1,
    realization: int = 0,
    world: Optional[SimWorld] = None,
    engine: Optional[ProcessEngine] = None,
) -> Dict[str, Any]:
    """The Figure 4 measurement: the benchmark across live processes.

    ``world`` defaults to one modeled node running ``n_procs`` ranks;
    every non-empty rank shard becomes a live worker.  Returns the reduced
    noise-weighted map plus measured wall-clock and per-worker timings.
    """
    if world is None:
        world = SimWorld(n_nodes=1, procs_per_node=n_procs)
    if engine is None:
        engine = ProcessEngine()
    n_obs = size.n_observations
    shards = world.worker_layout(n_obs)
    n_pix = healpix_npix(size.nside)

    wall0 = time.perf_counter()
    with SharedSlab.create({"zmap": ((n_obs, n_pix, _NNZ), np.float64)}) as slab:
        outcomes = engine.map_shards(
            satellite_shard_worker,
            shards,
            args=(size, implementation, realization, slab.spec),
        )
        # Fixed-order reduction over observations: the sum is independent
        # of how observations were packed onto workers.
        zmap = np.zeros((n_pix, _NNZ), dtype=np.float64)
        for iobs in range(n_obs):
            zmap += slab.array("zmap")[iobs]
    wall = time.perf_counter() - wall0

    tr = obs_state.active
    if tr is not None:
        tr.metrics.gauge_set("parallel.workers", float(len(shards)))
        tr.metrics.count(
            "parallel.worker_recoveries",
            float(sum(1 for o in outcomes if o.recovered)),
        )

    return {
        "zmap": zmap,
        "wall_seconds": wall,
        "n_workers": len(shards),
        "world": world.describe(),
        "start_method": engine.start_method,
        "worker_seconds": {o.rank: o.result["seconds"] for o in outcomes},
        "recovered_ranks": [o.rank for o in outcomes if o.recovered],
        "crash_injected_ranks": [o.rank for o in outcomes if o.crash_injected],
    }
