"""Shared-memory slabs for zero-pickle result arrays.

Workers and the parent process exchange large detector/map arrays through
one named :mod:`multiprocessing.shared_memory` segment instead of pickling
them over pipes.  A :class:`SharedSlab` packs several named arrays into the
segment at 64-byte-aligned offsets; its :class:`SlabSpec` is a tiny
picklable description a worker uses to attach views onto the same bytes.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, Mapping, Tuple

import numpy as np

__all__ = ["SlabSpec", "SharedSlab", "slab_until_registered"]

#: Cache-line alignment for every array inside the slab.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SlabSpec:
    """Picklable layout of one shared slab: segment name + array table."""

    shm_name: str
    #: name -> (offset, shape, dtype string)
    layout: Tuple[Tuple[str, int, Tuple[int, ...], str], ...]
    nbytes: int


class SharedSlab:
    """Named arrays packed into one shared-memory segment.

    Create in the parent with :meth:`create`, ship ``slab.spec`` to the
    workers, and :meth:`attach` there; both sides then see the same bytes
    through :meth:`array` views.  The parent owns the segment lifetime:
    call :meth:`close` everywhere and :meth:`unlink` once, in the parent.
    """

    def __init__(self, shm: shared_memory.SharedMemory, spec: SlabSpec, owner: bool):
        self._shm = shm
        self.spec = spec
        self._owner = owner
        self._unlinked = False
        #: Set by :meth:`mark_registered` once some durable owner (a
        #: result store, the parent's reduction loop) has taken over the
        #: segment's lifetime; :func:`slab_until_registered` consults it.
        self.registered = False
        self._arrays: Dict[str, np.ndarray] = {}
        for name, offset, shape, dtype in spec.layout:
            size = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            view = np.frombuffer(
                shm.buf, dtype=np.dtype(dtype), count=size // np.dtype(dtype).itemsize,
                offset=offset,
            )
            self._arrays[name] = view.reshape(shape)

    @classmethod
    def create(cls, arrays: Mapping[str, Tuple[Tuple[int, ...], object]]) -> "SharedSlab":
        """Allocate a segment holding ``{name: (shape, dtype)}``, zeroed."""
        layout = []
        offset = 0
        for name, (shape, dtype) in arrays.items():
            dt = np.dtype(dtype)
            offset = _aligned(offset)
            layout.append((name, offset, tuple(int(s) for s in shape), dt.str))
            offset += int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        nbytes = max(offset, 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        spec = SlabSpec(shm_name=shm.name, layout=tuple(layout), nbytes=nbytes)
        slab = cls(shm, spec, owner=True)
        for arr in slab._arrays.values():
            arr[...] = np.zeros((), dtype=arr.dtype)
        return slab

    @classmethod
    def attach(cls, spec: SlabSpec) -> "SharedSlab":
        """Attach to an existing segment from its picklable spec."""
        shm = shared_memory.SharedMemory(name=spec.shm_name)
        return cls(shm, spec, owner=False)

    def array(self, name: str) -> np.ndarray:
        """The live view of one named array (shared bytes, no copy)."""
        return self._arrays[name]

    def names(self):
        return list(self._arrays)

    def close(self) -> None:
        """Drop this process's mapping (views become invalid).

        Callers must drop their own :meth:`array` views first; a view
        still alive keeps the pages exported and the unmap is refused.
        """
        self._arrays.clear()
        try:
            self._shm.close()
        except BufferError:
            # A caller still holds a view; the mapping dies with the
            # process instead.  Not a leak -- the segment itself is
            # reclaimed by the owner's unlink.
            pass

    def mark_registered(self) -> None:
        """Record that a durable owner now tracks this segment's lifetime."""
        self.registered = True

    def unlink(self) -> None:
        """Destroy the segment (owner only, after every close); idempotent,
        so a crash-cleanup path and the normal teardown can both call it."""
        if self._owner and not self._unlinked:
            self._unlinked = True
            try:
                self._shm.unlink()
            except FileNotFoundError:
                # Already gone (e.g. an external sweeper); not an error.
                pass

    def __enter__(self) -> "SharedSlab":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            self.unlink()

    def __repr__(self) -> str:
        names = ", ".join(self._arrays)
        return f"SharedSlab({self.spec.shm_name!r}, [{names}], {self.spec.nbytes} bytes)"


@contextmanager
def slab_until_registered(
    arrays: Mapping[str, Tuple[Tuple[int, ...], object]]
) -> Iterator[SharedSlab]:
    """Create a slab that cannot be stranded in ``/dev/shm``.

    The window between ``SharedSlab.create`` and the moment some durable
    owner registers the segment is exactly where a crash leaks: the
    process dies, nothing ever calls ``unlink``, and the segment survives
    in ``/dev/shm`` until a reboot.  This context manager closes that
    window -- the ``finally`` unlinks the segment unless the body called
    :meth:`SharedSlab.mark_registered`, at which point the registrant owns
    teardown::

        with slab_until_registered({"data": (shape, np.float64)}) as slab:
            fill(slab)
            store.register(slab)   # durable owner from here on
            slab.mark_registered()
    """
    slab = SharedSlab.create(arrays)
    try:
        yield slab
    finally:
        if not slab.registered:
            slab.close()
            slab.unlink()
