"""repro.parallel — observation sharding across live OS processes.

The paper's runs get their node-level throughput from MPI ranks; this
package maps the *modeled* ranks of :class:`~repro.mpi.simworld.SimWorld`
onto real worker processes so the Figure 4 process sweep can be measured
in wall-clock seconds, not just modeled.  Four pieces:

* :class:`SharedSlab` (:mod:`~repro.parallel.shm`): named arrays in one
  shared-memory segment, so detector-scale results cross the process
  boundary without pickling;
* :class:`SubsetComm` (:mod:`~repro.parallel.sharding`): a communicator
  that pins a worker to its modeled rank's observation shard;
* :class:`ProcessEngine` (:mod:`~repro.parallel.engine`): static shard
  lifecycle, deterministic ``parallel.worker`` crash injection via
  ``repro.resilience``, inline shard re-execution on worker death, and
  merging of per-worker ``repro.obs`` event streams into one trace;
* :class:`ElasticPool` (:mod:`~repro.parallel.elastic`): the task-level
  replacement for static shards -- a lease-based work-stealing queue at
  per-observation granularity with worker heartbeats, straggler hedging
  (first-writer-wins), bounded respawn, and an inline last-resort lane.

Determinism is the contract: per-observation partial maps reduced in
fixed observation order make the result bitwise identical for any worker
count *and any steal/hedge/crash schedule*.
"""

from __future__ import annotations

from .elastic import (
    ElasticAborted,
    ElasticConfig,
    ElasticPool,
    ElasticReport,
    TaskCheckpoint,
)
from .engine import (
    CRASH_EXIT_CODE,
    ProcessEngine,
    ShardOutcome,
    replay_worker_events,
)
from .satellite import (
    make_satellite_data_shard,
    run_parallel_satellite,
    satellite_shard_worker,
    satellite_task_runner,
)
from .sharding import SubsetComm
from .shm import SharedSlab, SlabSpec, slab_until_registered

__all__ = [
    "CRASH_EXIT_CODE",
    "ElasticAborted",
    "ElasticConfig",
    "ElasticPool",
    "ElasticReport",
    "ProcessEngine",
    "ShardOutcome",
    "SharedSlab",
    "SlabSpec",
    "TaskCheckpoint",
    "slab_until_registered",
    "SubsetComm",
    "make_satellite_data_shard",
    "replay_worker_events",
    "run_parallel_satellite",
    "satellite_shard_worker",
    "satellite_task_runner",
]
