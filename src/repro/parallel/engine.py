"""The process engine: live workers for modeled ranks, with recovery.

One OS process per non-empty shard, results over a per-worker pipe, large
arrays over a :class:`~repro.parallel.shm.SharedSlab` (never pickled).
The parent:

* polls the resilience controller's ``parallel.worker`` site once per
  rank, in rank order, before launching -- so crash injection is a pure
  function of the fault plan, independent of scheduling;
* detects worker death (nonzero exit code, missing result, or timeout)
  and **re-runs that shard inline**: every shard is a pure function of
  its seeded inputs, so the recovered run reproduces the lost partials
  bit for bit;
* replays each worker's ``repro.obs`` events into the parent's active
  tracer tagged with ``worker=<rank>``, merging all timelines into one
  trace with a track per worker.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import state as obs_state
from ..obs.events import ClockDomain, Event
from ..resilience import state as res_state

__all__ = [
    "ShardOutcome",
    "ProcessEngine",
    "CRASH_EXIT_CODE",
    "replay_worker_events",
]

#: Exit code an injected worker crash dies with (mirrors a SIGKILL'd or
#: OOM-killed worker: no result, no cleanup).
CRASH_EXIT_CODE = 17


@dataclass
class ShardOutcome:
    """What happened to one shard."""

    rank: int
    obs_indices: List[int]
    result: Dict[str, Any]
    recovered: bool = False
    crash_injected: bool = False


def _worker_entry(conn, worker: Callable, rank: int, obs_indices, args, crash: bool):
    """Child-process entry: run the shard, ship the result, exit."""
    try:
        result = worker(rank, list(obs_indices), *args, crash=crash)
        conn.send((rank, result))
        conn.close()
    except BaseException:
        # Any failure is reported by the exit code; the parent re-runs.
        os._exit(1)


class ProcessEngine:
    """Run shard workers as OS processes and recover the casualties."""

    def __init__(
        self,
        start_method: Optional[str] = None,
        timeout_s: float = 600.0,
    ):
        methods = mp.get_all_start_methods()
        if start_method is None:
            # fork shares the already-imported interpreter (fast start);
            # spawn is the portable fallback.
            start_method = "fork" if "fork" in methods else "spawn"
        if start_method not in methods:
            raise ValueError(
                f"start method {start_method!r} unavailable; have {methods}"
            )
        self.ctx = mp.get_context(start_method)
        self.start_method = start_method
        self.timeout_s = timeout_s

    def map_shards(
        self,
        worker: Callable,
        shards: Sequence[Tuple[int, Sequence[int]]],
        args: Tuple = (),
    ) -> List[ShardOutcome]:
        """Run ``worker(rank, obs_indices, *args, crash=...)`` per shard.

        ``worker`` must be a module-level callable (picklable under
        spawn) returning a small picklable dict; anything big goes
        through shared memory.  Outcomes come back in shard order.
        """
        ctrl = res_state.active
        # Injection decisions first, in rank order: deterministic replay.
        crashes: Dict[int, bool] = {}
        for rank, obs_indices in shards:
            spec = None
            if ctrl is not None:
                spec = ctrl.check(
                    "parallel.worker", rank=rank, n_obs=len(obs_indices)
                )
            crashes[rank] = spec is not None

        procs: List[Tuple[int, Any, Any]] = []
        for rank, obs_indices in shards:
            parent_conn, child_conn = self.ctx.Pipe(duplex=False)
            proc = self.ctx.Process(
                target=_worker_entry,
                args=(child_conn, worker, rank, list(obs_indices), args, crashes[rank]),
                name=f"repro-shard-{rank}",
            )
            proc.start()
            child_conn.close()
            procs.append((rank, proc, parent_conn))

        results = self._collect_all(procs)
        outcomes: List[ShardOutcome] = []
        for (rank, proc, conn), (_, obs_indices) in zip(procs, shards):
            result = results.get(rank)
            recovered = False
            if result is None:
                # The worker died (injected crash, real crash, or hang):
                # recompute its shard here.  Partial slab writes are
                # overwritten because the rerun regenerates every
                # observation slot the shard owns.
                result = worker(rank, list(obs_indices), *args, crash=False)
                recovered = True
                if ctrl is not None:
                    ctrl.record_worker_recovery(rank, len(obs_indices))
            outcomes.append(
                ShardOutcome(
                    rank=rank,
                    obs_indices=list(obs_indices),
                    result=result,
                    recovered=recovered,
                    crash_injected=crashes[rank],
                )
            )
        self._replay_events(outcomes)
        return outcomes

    def _collect_all(
        self, procs: Sequence[Tuple[int, Any, Any]]
    ) -> Dict[int, Dict[str, Any]]:
        """Every worker's result, collected against ONE shared deadline.

        ``connection.wait`` over all pipes at once replaces the old
        per-rank ``poll`` + ``join`` chain, where each wedged worker cost
        up to 2x ``timeout_s`` *sequentially*: a closed pipe (crash) wakes
        the wait immediately, and however many workers hang, the whole
        collection is bounded by a single ``timeout_s``.  Ranks absent
        from the returned dict died, hung, or exited nonzero.
        """
        deadline = time.monotonic() + self.timeout_s
        pending = {conn: rank for rank, _, conn in procs}
        results: Dict[int, Dict[str, Any]] = {}
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            ready = mp_connection.wait(list(pending), timeout=remaining)
            if not ready:
                break  # deadline hit with silent workers still out there
            for conn in ready:
                rank = pending.pop(conn)
                try:
                    _, result = conn.recv()
                    results[rank] = result
                except (EOFError, OSError):
                    pass  # the worker died before sending; rerun inline
        for rank, proc, conn in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join()
                results.pop(rank, None)
            if proc.exitcode != 0:
                results.pop(rank, None)
            conn.close()
        return results

    @staticmethod
    def _replay_events(outcomes: Sequence[ShardOutcome]) -> None:
        replay_worker_events(
            (o.rank, o.result.get("events", ())) for o in outcomes
        )

    def __repr__(self) -> str:
        return f"ProcessEngine(start_method={self.start_method!r})"


def replay_worker_events(streams: Iterable[Tuple[int, Sequence[Event]]]) -> None:
    """Merge worker event streams into the parent's active tracer.

    Each stream is ``(worker_id, events)``; every replayed event is tagged
    ``worker=<id>`` so one merged trace shows a track per worker.  Device
    events go through ``device_event`` to keep the tracer's device-side
    aggregates in sync with the replayed launches/transfers.
    """
    tr = obs_state.active
    if tr is None:
        return
    for wid, events in streams:
        for ev in events:
            attrs = dict(ev.attrs)
            attrs["worker"] = wid
            if ev.clock is ClockDomain.DEVICE:
                charged = attrs.pop("charged_s", None)
                tr.device_event(
                    ev.type, ev.name, ts=ev.ts, dur=ev.dur,
                    charged_s=charged, **attrs,
                )
            else:
                tr.emit(
                    Event(ev.type, ev.name, ts=ev.ts, dur=ev.dur,
                          clock=ev.clock, attrs=attrs)
                )
