"""The process engine: live workers for modeled ranks, with recovery.

One OS process per non-empty shard, results over a per-worker pipe, large
arrays over a :class:`~repro.parallel.shm.SharedSlab` (never pickled).
The parent:

* polls the resilience controller's ``parallel.worker`` site once per
  rank, in rank order, before launching -- so crash injection is a pure
  function of the fault plan, independent of scheduling;
* detects worker death (nonzero exit code, missing result, or timeout)
  and **re-runs that shard inline**: every shard is a pure function of
  its seeded inputs, so the recovered run reproduces the lost partials
  bit for bit;
* replays each worker's ``repro.obs`` events into the parent's active
  tracer tagged with ``worker=<rank>``, merging all timelines into one
  trace with a track per worker.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import state as obs_state
from ..obs.events import ClockDomain, Event
from ..resilience import state as res_state

__all__ = ["ShardOutcome", "ProcessEngine", "CRASH_EXIT_CODE"]

#: Exit code an injected worker crash dies with (mirrors a SIGKILL'd or
#: OOM-killed worker: no result, no cleanup).
CRASH_EXIT_CODE = 17


@dataclass
class ShardOutcome:
    """What happened to one shard."""

    rank: int
    obs_indices: List[int]
    result: Dict[str, Any]
    recovered: bool = False
    crash_injected: bool = False


def _worker_entry(conn, worker: Callable, rank: int, obs_indices, args, crash: bool):
    """Child-process entry: run the shard, ship the result, exit."""
    try:
        result = worker(rank, list(obs_indices), *args, crash=crash)
        conn.send((rank, result))
        conn.close()
    except BaseException:
        # Any failure is reported by the exit code; the parent re-runs.
        os._exit(1)


class ProcessEngine:
    """Run shard workers as OS processes and recover the casualties."""

    def __init__(
        self,
        start_method: Optional[str] = None,
        timeout_s: float = 600.0,
    ):
        methods = mp.get_all_start_methods()
        if start_method is None:
            # fork shares the already-imported interpreter (fast start);
            # spawn is the portable fallback.
            start_method = "fork" if "fork" in methods else "spawn"
        if start_method not in methods:
            raise ValueError(
                f"start method {start_method!r} unavailable; have {methods}"
            )
        self.ctx = mp.get_context(start_method)
        self.start_method = start_method
        self.timeout_s = timeout_s

    def map_shards(
        self,
        worker: Callable,
        shards: Sequence[Tuple[int, Sequence[int]]],
        args: Tuple = (),
    ) -> List[ShardOutcome]:
        """Run ``worker(rank, obs_indices, *args, crash=...)`` per shard.

        ``worker`` must be a module-level callable (picklable under
        spawn) returning a small picklable dict; anything big goes
        through shared memory.  Outcomes come back in shard order.
        """
        ctrl = res_state.active
        # Injection decisions first, in rank order: deterministic replay.
        crashes: Dict[int, bool] = {}
        for rank, obs_indices in shards:
            spec = None
            if ctrl is not None:
                spec = ctrl.check(
                    "parallel.worker", rank=rank, n_obs=len(obs_indices)
                )
            crashes[rank] = spec is not None

        procs: List[Tuple[int, Any, Any]] = []
        for rank, obs_indices in shards:
            parent_conn, child_conn = self.ctx.Pipe(duplex=False)
            proc = self.ctx.Process(
                target=_worker_entry,
                args=(child_conn, worker, rank, list(obs_indices), args, crashes[rank]),
                name=f"repro-shard-{rank}",
            )
            proc.start()
            child_conn.close()
            procs.append((rank, proc, parent_conn))

        outcomes: List[ShardOutcome] = []
        for (rank, proc, conn), (_, obs_indices) in zip(procs, shards):
            result = self._collect(proc, conn)
            recovered = False
            if result is None:
                # The worker died (injected crash, real crash, or hang):
                # recompute its shard here.  Partial slab writes are
                # overwritten because the rerun regenerates every
                # observation slot the shard owns.
                result = worker(rank, list(obs_indices), *args, crash=False)
                recovered = True
                if ctrl is not None:
                    ctrl.record_worker_recovery(rank, len(obs_indices))
            outcomes.append(
                ShardOutcome(
                    rank=rank,
                    obs_indices=list(obs_indices),
                    result=result,
                    recovered=recovered,
                    crash_injected=crashes[rank],
                )
            )
        self._replay_events(outcomes)
        return outcomes

    def _collect(self, proc, conn) -> Optional[Dict[str, Any]]:
        """One worker's result dict, or ``None`` if it died or hung."""
        result = None
        if conn.poll(self.timeout_s):
            try:
                _, result = conn.recv()
            except (EOFError, OSError):
                result = None
        proc.join(self.timeout_s)
        if proc.is_alive():
            proc.terminate()
            proc.join()
            result = None
        if proc.exitcode != 0:
            result = None
        conn.close()
        return result

    @staticmethod
    def _replay_events(outcomes: Sequence[ShardOutcome]) -> None:
        """Merge worker event streams into the parent's active tracer."""
        tr = obs_state.active
        if tr is None:
            return
        for outcome in outcomes:
            for ev in outcome.result.get("events", ()):
                attrs = dict(ev.attrs)
                attrs["worker"] = outcome.rank
                if ev.clock is ClockDomain.DEVICE:
                    # device_event keeps the tracer's aggregates in sync
                    # with the replayed launches/transfers.
                    charged = attrs.pop("charged_s", None)
                    tr.device_event(
                        ev.type, ev.name, ts=ev.ts, dur=ev.dur,
                        charged_s=charged, **attrs,
                    )
                else:
                    tr.emit(
                        Event(ev.type, ev.name, ts=ev.ts, dur=ev.dur,
                              clock=ev.clock, attrs=attrs)
                    )

    def __repr__(self) -> str:
        return f"ProcessEngine(start_method={self.start_method!r})"
