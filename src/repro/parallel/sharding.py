"""Mapping modeled MPI ranks onto live worker shards.

:class:`~repro.mpi.simworld.SimWorld` describes the modeled process layout
(the paper's Figure 4 x-axis); :meth:`SimWorld.worker_layout` turns it into
``(rank, observation indices)`` shards.  Inside a worker, a
:class:`SubsetComm` makes the simulation operators generate exactly that
rank's observations: ``distribute_observations`` returns the fixed shard
instead of a block of a live communicator, so a worker behaves like the
modeled MPI rank it stands in for.
"""

from __future__ import annotations

from typing import List, Sequence

from ..mpi.comm import ToastComm

__all__ = ["SubsetComm"]


class SubsetComm(ToastComm):
    """A serial communicator that owns a fixed set of observation indices.

    Everything else degenerates to the serial case: collectives are local,
    reductions are copies.  Only the observation distribution is pinned,
    which is all the simulation operators consult.
    """

    def __init__(self, obs_indices: Sequence[int]):
        super().__init__()
        self.obs_indices = [int(i) for i in obs_indices]

    def distribute_observations(self, n_obs: int) -> List[int]:
        bad = [i for i in self.obs_indices if i < 0 or i >= n_obs]
        if bad:
            raise ValueError(
                f"shard indices {bad} out of range for {n_obs} observations"
            )
        return list(self.obs_indices)
