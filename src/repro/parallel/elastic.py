"""The elastic work-stealing worker pool: leases, hedging, live rejoin.

Static sharding (one shard per modeled rank, :class:`ProcessEngine`) stalls
the whole map on one straggler and reruns whole shards inline on a crash.
This module replaces it with task-level elasticity at per-observation
granularity:

* **Work stealing.**  Tasks live in one queue; every idle worker pulls the
  next task.  Nothing is pre-assigned, so a slow worker simply contributes
  fewer tasks instead of defining the critical path.
* **Lease-based liveness.**  Each dispatched task carries a lease renewed
  by worker heartbeats (a background thread in the worker beats over the
  result pipe).  A lease that expires -- crash, hang, wedged pipe, injected
  ``HEARTBEAT_LOSS`` -- sends the task back to the queue for any live
  worker to steal.  The silent worker is *not* killed: if it resurfaces it
  rejoins the queue live (its late result is a no-op duplicate).
* **Straggler hedging.**  A task running past the hedge deadline gets a
  speculative duplicate on an idle worker; the first completion wins.
* **Elastic membership.**  Dead workers are reaped and respawned (bounded
  by a respawn budget); when no worker survives, the parent finishes the
  remaining tasks inline so the map always completes.

Determinism is unchanged from the static engine: tasks are pure functions
of their seeded inputs writing disjoint (or bitwise-identical, under
hedging) slots of a :class:`~repro.parallel.shm.SharedSlab`, and the
caller reduces in fixed task order -- so the result is bitwise identical
for *any* steal, hedge, crash, or revival schedule.

Faults are plan-driven and composable: the pool polls the resilience
sites ``parallel.worker`` (WORKER_CRASH, at every spawn), ``parallel.task``
(TASK_STALL, at every dispatch), and ``parallel.heartbeat``
(HEARTBEAT_LOSS, at every dispatch), and ships the armed behaviours to the
workers with the assignment, so injection stays a pure function of the
fault plan while the scheduler reacts live.  Every scheduler decision is
emitted as a typed ``repro.obs`` event (WORKER / LEASE / STEAL / HEDGE).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..obs import state as obs_state
from ..obs.events import ClockDomain, Event, EventType
from ..resilience import state as res_state
from ..resilience.faults import FaultKind
from .engine import CRASH_EXIT_CODE, ProcessEngine, replay_worker_events

__all__ = [
    "ElasticConfig",
    "ElasticAborted",
    "ElasticReport",
    "ElasticPool",
    "TaskCheckpoint",
]

#: Metric counted per scheduler event type (WORKER events are counted by
#: phase inside :meth:`ElasticPool._emit`).
_EVENT_METRIC = {
    EventType.STEAL: "parallel.steals",
    EventType.HEDGE: "parallel.hedges",
}


@dataclass(frozen=True)
class ElasticConfig:
    """Scheduler knobs; injection behaviour comes from the fault plan."""

    #: Seconds a task's lease survives without a heartbeat before the
    #: task is requeued for stealing.
    lease_s: float = 5.0
    #: Worker heartbeat period.  Must be well under ``lease_s`` so one
    #: missed beat (GIL hiccup) does not look like a lost worker.
    heartbeat_s: float = 0.25
    #: Seconds a task may run before an idle worker hedges a duplicate.
    hedge_s: float = 30.0
    #: Speculative duplicates allowed per task, beyond the primary runner.
    max_hedges_per_task: int = 1
    #: Replacement workers the pool may spawn over its lifetime
    #: (``None`` means twice the worker count).
    max_respawns: Optional[int] = None
    #: Times a task may *fail* (task_fn raising) before the pool gives up.
    max_task_attempts: int = 3
    #: Hard wall-clock bound on one :meth:`ElasticPool.run`; past it the
    #: parent finishes the remaining tasks inline.
    total_timeout_s: float = 600.0
    #: Seconds to wait for workers to drain at shutdown before SIGTERM.
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.lease_s <= 0 or self.heartbeat_s <= 0 or self.hedge_s <= 0:
            raise ValueError("lease, heartbeat, and hedge periods must be positive")
        if self.heartbeat_s >= self.lease_s:
            raise ValueError(
                f"heartbeat period ({self.heartbeat_s}s) must be shorter than "
                f"the lease ({self.lease_s}s), or every task looks dead"
            )
        if self.max_hedges_per_task < 0 or self.max_task_attempts < 1:
            raise ValueError("hedge and attempt bounds must be non-negative")


class ElasticAborted(RuntimeError):
    """The run was cut short (``abort_after_commits``): a modeled kill.

    Carries the partial :class:`ElasticReport` so checkpoint/resume tests
    can assert exactly what survived the kill.
    """

    def __init__(self, message: str, report: "ElasticReport"):
        super().__init__(message)
        self.report = report


@dataclass
class ElasticReport:
    """What one :meth:`ElasticPool.run` did, as plain data."""

    #: task_id -> {"worker": wid, "seconds": float} in commit order.
    committed: Dict[Any, Dict[str, Any]] = field(default_factory=dict)
    #: Scheduler counters: steals, hedges, lease_expiries, respawns,
    #: revives, duplicates, inline_runs, worker_deaths, task_failures.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Total task seconds per worker id (-1 is the parent's inline lane).
    worker_seconds: Dict[int, float] = field(default_factory=dict)
    #: Worker ids whose spawn poll armed an injected crash.
    crash_armed: List[int] = field(default_factory=list)
    #: Worker ids that died (or went silent) while holding a task that
    #: was later recovered by another worker or the inline lane.
    recovered_workers: List[int] = field(default_factory=list)
    #: Tasks never committed (only on an aborted run).
    incomplete: List[Any] = field(default_factory=list)
    #: Workers spawned over the run's lifetime (initial + respawns).
    workers_spawned: int = 0

    @property
    def complete(self) -> bool:
        return not self.incomplete


@dataclass
class _Assign:
    task_id: Any
    started: float
    last_beat: float
    crash: bool = False
    mute: bool = False
    stall_s: float = 0.0


@dataclass
class _Worker:
    wid: int
    gen: int
    proc: Any
    conn: Any
    status: str = "starting"  # starting -> idle -> busy -> suspect | dead
    assign: Optional[_Assign] = None
    crash_armed: bool = False

    @property
    def alive(self) -> bool:
        return self.status not in ("dead",)


@dataclass
class _Task:
    task_id: Any
    done: bool = False
    queued: bool = True
    attempts: int = 0
    failures: int = 0
    first_started: Optional[float] = None
    #: Workers that lost this task (death or lease expiry) before commit.
    lost_by: Set[int] = field(default_factory=set)
    #: Set when the task re-enters the queue after a loss; the next
    #: dispatch of it is a steal.
    steal_from: Optional[int] = None
    committed_by: Optional[int] = None
    events: List[Event] = field(default_factory=list)
    seconds: float = 0.0


def _pool_worker_entry(conn, wid: int, heartbeat_s: float, task_fn, args, cleanup):
    """Child-process entry: pull tasks until told to stop, heartbeating.

    A background thread beats ``("heartbeat", wid, task_id)`` over the
    result pipe while a task runs; an armed ``mute_heartbeats`` silences it
    (the injected HEARTBEAT_LOSS), an armed ``stall_s`` sleeps before the
    task body (the injected TASK_STALL -- heartbeats keep flowing, the task
    is just slow), and an armed ``crash`` dies with ``os._exit`` after the
    task body but before reporting, exactly like an OOM-killed worker whose
    partial slab writes survive it.
    """
    import threading

    from .. import obs as _obs

    send_lock = threading.Lock()
    state: Dict[str, Any] = {"task": None, "mute": False}
    stop_beats = threading.Event()

    def _send(msg) -> bool:
        with send_lock:
            try:
                conn.send(msg)
                return True
            except (BrokenPipeError, OSError):
                return False

    def _beat() -> None:
        while not stop_beats.wait(heartbeat_s):
            task = state["task"]
            if task is not None and not state["mute"]:
                if not _send(("heartbeat", wid, task)):
                    return

    threading.Thread(target=_beat, name=f"beat-{wid}", daemon=True).start()
    try:
        _send(("ready", wid, None))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "stop":
                break
            _, task_id, flags = msg
            state["mute"] = bool(flags.get("mute_heartbeats"))
            state["task"] = task_id
            stall = float(flags.get("stall_s") or 0.0)
            t0 = time.perf_counter()
            ok, err, events = True, None, []
            try:
                with _obs.tracing() as tracer:
                    if stall > 0.0:
                        time.sleep(stall)
                    task_fn(wid, task_id, *args)
                events = list(tracer.events)
            except BaseException as e:  # noqa: BLE001 - reported to parent
                ok, err = False, f"{type(e).__name__}: {e}"
            state["task"] = None
            if flags.get("crash"):
                os._exit(CRASH_EXIT_CODE)
            _send(
                (
                    "done",
                    wid,
                    {
                        "task_id": task_id,
                        "ok": ok,
                        "error": err,
                        "seconds": time.perf_counter() - t0,
                        "events": events,
                    },
                )
            )
    finally:
        stop_beats.set()
        if cleanup is not None:
            try:
                cleanup()
            except Exception:
                pass
        try:
            conn.close()
        except OSError:
            pass


class ElasticPool:
    """Run pure tasks across an elastic set of worker processes.

    ``task_fn(wid, task_id, *args)`` must be a module-level callable
    (picklable under spawn) whose only output channel is shared memory --
    its return value is discarded; determinism of the caller's reduction
    is what makes stealing and hedging safe.  ``worker_cleanup`` runs in
    each worker just before a clean exit (close cached slab mappings).
    """

    def __init__(
        self,
        task_fn: Callable,
        args: Tuple = (),
        n_workers: int = 1,
        config: Optional[ElasticConfig] = None,
        start_method: Optional[str] = None,
        worker_cleanup: Optional[Callable] = None,
    ):
        if n_workers < 1:
            raise ValueError("the pool needs at least one worker")
        self.task_fn = task_fn
        self.args = tuple(args)
        self.n_workers = n_workers
        self.config = config if config is not None else ElasticConfig()
        # Reuse the engine's start-method resolution (fork when available).
        self._engine = ProcessEngine(start_method=start_method)
        self.ctx = self._engine.ctx
        self.start_method = self._engine.start_method
        self.worker_cleanup = worker_cleanup

    # -- observability helpers -------------------------------------------------

    def _emit(self, etype: EventType, name: str, **attrs: Any) -> None:
        tr = obs_state.active
        if tr is None:
            return
        tr.emit(
            Event(etype, name, ts=tr.now(), clock=ClockDomain.HOST, attrs=attrs)
        )
        metric = _EVENT_METRIC.get(etype)
        if etype is EventType.WORKER:
            metric = f"parallel.worker_{attrs.get('phase', 'event')}s"
        elif etype is EventType.LEASE and attrs.get("phase") == "expire":
            metric = "parallel.lease_expiries"
        if metric is not None:
            tr.metrics.count(metric)

    @staticmethod
    def _count(counters: Dict[str, int], name: str, ctrl_name: Optional[str] = None) -> None:
        counters[name] = counters.get(name, 0) + 1
        ctrl = res_state.active
        if ctrl is not None and ctrl_name is not None:
            ctrl.count(ctrl_name)

    # -- worker lifecycle ------------------------------------------------------

    def _spawn(self, wid: int, gen: int, report: ElasticReport) -> _Worker:
        """Start one worker; polls the ``parallel.worker`` crash site."""
        crash_armed = False
        ctrl = res_state.active
        if ctrl is not None:
            spec = ctrl.check("parallel.worker", rank=wid, gen=gen)
            crash_armed = spec is not None and spec.kind is FaultKind.WORKER_CRASH
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=_pool_worker_entry,
            args=(
                child_conn,
                wid,
                self.config.heartbeat_s,
                self.task_fn,
                self.args,
                self.worker_cleanup,
            ),
            name=f"repro-elastic-{wid}g{gen}",
        )
        proc.start()
        child_conn.close()
        report.workers_spawned += 1
        if crash_armed:
            report.crash_armed.append(wid)
        self._emit(
            EventType.WORKER,
            "parallel.worker",
            phase="respawn" if gen > 0 else "spawn",
            worker=wid,
            gen=gen,
            crash_armed=crash_armed,
        )
        return _Worker(
            wid=wid, gen=gen, proc=proc, conn=parent_conn, crash_armed=crash_armed
        )

    # -- the scheduler ---------------------------------------------------------

    def run(
        self,
        task_ids: Sequence[Any],
        on_commit: Optional[Callable[[Any], None]] = None,
        abort_after_commits: Optional[int] = None,
    ) -> ElasticReport:
        """Run every task to commit; returns the scheduling report.

        ``on_commit(task_id)`` fires in the parent after each first-writer
        commit (checkpointing hook).  ``abort_after_commits=k`` models an
        external kill: the pool tears down after the k-th commit and
        raises :class:`ElasticAborted` with the partial report.
        """
        cfg = self.config
        report = ElasticReport()
        counters = report.counters
        tasks: Dict[Any, _Task] = {tid: _Task(tid) for tid in task_ids}
        if len(tasks) != len(task_ids):
            raise ValueError("task ids must be unique")
        queue: deque = deque(task_ids)
        workers: Dict[int, _Worker] = {}
        respawn_budget = (
            cfg.max_respawns if cfg.max_respawns is not None else 2 * self.n_workers
        )
        deadline = time.monotonic() + cfg.total_timeout_s
        done_count = 0
        aborted = False

        def live_runners(task: _Task) -> List[_Worker]:
            return [
                w
                for w in workers.values()
                if w.status in ("busy", "suspect")
                and w.assign is not None
                and w.assign.task_id == task.task_id
            ]

        def requeue(task: _Task, from_wid: int, reason: str) -> None:
            """Send a lost task back for stealing (front of the queue)."""
            task.lost_by.add(from_wid)
            if not task.done and not task.queued:
                task.queued = True
                task.steal_from = from_wid
                queue.appendleft(task.task_id)

        def commit(w: Optional[_Worker], meta: Dict[str, Any]) -> None:
            nonlocal done_count, aborted
            task = tasks[meta["task_id"]]
            if task.done:
                self._count(counters, "duplicates")
                return
            task.done = True
            task.committed_by = w.wid if w is not None else -1
            task.seconds = float(meta.get("seconds", 0.0))
            task.events = list(meta.get("events", ()))
            report.committed[task.task_id] = {
                "worker": task.committed_by,
                "seconds": task.seconds,
            }
            done_count += 1
            ctrl = res_state.active
            for lost_wid in sorted(task.lost_by):
                if lost_wid not in report.recovered_workers:
                    report.recovered_workers.append(lost_wid)
                if ctrl is not None:
                    ctrl.record_worker_recovery(lost_wid, 1)
            if on_commit is not None:
                on_commit(task.task_id)
            if abort_after_commits is not None and done_count >= abort_after_commits:
                aborted = True

        def reap(w: _Worker, reason: str) -> None:
            """A worker died: recover its task, respawn if the budget allows."""
            nonlocal respawn_budget
            if w.status == "dead":
                return
            w.status = "dead"
            self._count(counters, "worker_deaths")
            self._emit(
                EventType.WORKER,
                "parallel.worker",
                phase="exit",
                worker=w.wid,
                gen=w.gen,
                exitcode=w.proc.exitcode,
                reason=reason,
            )
            if w.assign is not None:
                task = tasks.get(w.assign.task_id)
                if task is not None and not task.done and not live_runners(task):
                    requeue(task, w.wid, reason)
                w.assign = None
            try:
                w.conn.close()
            except OSError:
                pass
            if done_count < len(tasks) and not aborted and respawn_budget > 0:
                respawn_budget -= 1
                self._count(counters, "respawns", "worker_respawns")
                workers[w.wid] = self._spawn(w.wid, w.gen + 1, report)

        def dispatch(w: _Worker, task: _Task, hedge_of: Optional[List[int]] = None) -> None:
            now = time.monotonic()
            stall_s, mute = 0.0, False
            ctrl = res_state.active
            if ctrl is not None:
                spec = ctrl.check("parallel.task", task=task.task_id, worker=w.wid)
                if spec is not None and spec.kind is FaultKind.TASK_STALL:
                    stall_s = spec.stall_seconds
                spec = ctrl.check("parallel.heartbeat", task=task.task_id, worker=w.wid)
                if spec is not None and spec.kind is FaultKind.HEARTBEAT_LOSS:
                    mute = True
            crash = w.crash_armed
            w.crash_armed = False  # one crash per armed worker
            w.assign = _Assign(
                task_id=task.task_id,
                started=now,
                last_beat=now,
                crash=crash,
                mute=mute,
                stall_s=stall_s,
            )
            w.status = "busy"
            task.attempts += 1
            if task.first_started is None:
                task.first_started = now
            if hedge_of is not None:
                self._count(counters, "hedges", "hedges")
                self._emit(
                    EventType.HEDGE,
                    "parallel.task",
                    task=task.task_id,
                    worker=w.wid,
                    racing=hedge_of,
                )
            elif task.steal_from is not None:
                self._count(counters, "steals", "steals")
                self._emit(
                    EventType.STEAL,
                    "parallel.task",
                    task=task.task_id,
                    worker=w.wid,
                    stolen_from=task.steal_from,
                )
                task.steal_from = None
            self._emit(
                EventType.LEASE,
                "parallel.lease",
                phase="grant",
                task=task.task_id,
                worker=w.wid,
                lease_s=cfg.lease_s,
            )
            w.conn.send(
                (
                    "task",
                    task.task_id,
                    {"crash": crash, "mute_heartbeats": mute, "stall_s": stall_s},
                )
            )

        def handle(w: _Worker, msg) -> None:
            kind = msg[0]
            now = time.monotonic()
            if kind == "ready":
                w.status = "idle"
                return
            if kind == "heartbeat":
                if w.assign is not None and w.assign.task_id == msg[2]:
                    w.assign.last_beat = now
                return
            if kind == "done":
                meta = msg[2]
                was_suspect = w.status == "suspect"
                current = w.assign.task_id if w.assign is not None else None
                w.assign = None
                w.status = "idle"
                if was_suspect:
                    self._count(counters, "revives")
                    self._emit(
                        EventType.WORKER,
                        "parallel.worker",
                        phase="revive",
                        worker=w.wid,
                        gen=w.gen,
                    )
                if not meta.get("ok", False):
                    task = tasks.get(meta["task_id"])
                    self._count(counters, "task_failures")
                    if task is not None and not task.done:
                        task.failures += 1
                        if task.failures >= cfg.max_task_attempts:
                            raise RuntimeError(
                                f"task {task.task_id!r} failed "
                                f"{task.failures} times; last error: "
                                f"{meta.get('error')}"
                            )
                        if not task.queued and not live_runners(task):
                            task.queued = True
                            queue.appendleft(task.task_id)
                    return
                if current is not None and current != meta["task_id"]:
                    # A stale result from before a steal; still a commit
                    # candidate (first writer wins on identical bytes).
                    pass
                commit(w, meta)

        try:
            for wid in range(self.n_workers):
                workers[wid] = self._spawn(wid, 0, report)

            while done_count < len(tasks) and not aborted:
                now = time.monotonic()
                if now > deadline:
                    break

                # Reap workers whose process exited (crash or clean death).
                for w in list(workers.values()):
                    if w.alive and w.proc.exitcode is not None and not w.conn.poll():
                        reap(w, "exitcode")

                # Lease sweep: silent workers lose their task to the queue.
                for w in workers.values():
                    if w.status == "busy" and w.assign is not None:
                        lease_end = w.assign.last_beat + cfg.lease_s
                        if now > lease_end:
                            w.status = "suspect"
                            self._count(counters, "lease_expiries", "lease_expiries")
                            self._emit(
                                EventType.LEASE,
                                "parallel.lease",
                                phase="expire",
                                task=w.assign.task_id,
                                worker=w.wid,
                                silent_s=now - w.assign.last_beat,
                            )
                            task = tasks.get(w.assign.task_id)
                            if task is not None and not task.done:
                                others = [
                                    r for r in live_runners(task) if r.wid != w.wid
                                ]
                                if not others:
                                    requeue(task, w.wid, "lease_expired")

                # No live workers at all: finish inline (the last resort).
                if not any(w.alive for w in workers.values()):
                    break

                # Dispatch: drain the queue onto idle workers, then hedge
                # the oldest eligible straggler.
                idle = [w for w in workers.values() if w.status == "idle"]
                for w in idle:
                    task = None
                    while queue:
                        candidate = tasks[queue.popleft()]
                        if not candidate.done:
                            candidate.queued = False
                            task = candidate
                            break
                    if task is not None:
                        dispatch(w, task)
                        continue
                    hedgeable = [
                        t
                        for t in tasks.values()
                        if not t.done
                        and not t.queued
                        and t.first_started is not None
                        and now - t.first_started > cfg.hedge_s
                        and 0 < len(live_runners(t)) <= cfg.max_hedges_per_task
                    ]
                    if hedgeable:
                        target = min(hedgeable, key=lambda t: t.first_started)
                        dispatch(
                            w, target, hedge_of=[r.wid for r in live_runners(target)]
                        )

                # Wait for messages, bounded by the nearest deadline.
                conns = {
                    w.conn: w for w in workers.values() if w.alive
                }
                wait_s = 0.1
                for w in workers.values():
                    if w.status == "busy" and w.assign is not None:
                        wait_s = min(
                            wait_s, w.assign.last_beat + cfg.lease_s - now
                        )
                wait_s = max(0.01, min(wait_s, 0.1))
                try:
                    ready = mp_connection.wait(list(conns), timeout=wait_s)
                except OSError:
                    ready = []
                for conn in ready:
                    w = conns[conn]
                    while True:
                        try:
                            if not conn.poll():
                                break
                            msg = conn.recv()
                        except (EOFError, OSError):
                            reap(w, "pipe_closed")
                            break
                        handle(w, msg)
                        if aborted:
                            break
                    if aborted:
                        break

            # Inline lane: whatever is left runs in the parent, in task
            # order, so the run *always* completes (unless aborted).
            if not aborted:
                for tid, task in tasks.items():
                    if task.done:
                        continue
                    self._count(counters, "inline_runs", "inline_recoveries")
                    t0 = time.perf_counter()
                    self.task_fn(-1, tid, *self.args)
                    commit(None, {"task_id": tid, "seconds": time.perf_counter() - t0})
        finally:
            self._shutdown(workers)

        for task in tasks.values():
            if not task.done:
                report.incomplete.append(task.task_id)
        for task in tasks.values():
            if task.committed_by is not None and task.committed_by >= 0:
                report.worker_seconds[task.committed_by] = (
                    report.worker_seconds.get(task.committed_by, 0.0) + task.seconds
                )
        for wid in range(self.n_workers):
            report.worker_seconds.setdefault(wid, 0.0)
        replay_worker_events(
            (task.committed_by, task.events)
            for task in tasks.values()
            if task.done and task.events
        )
        report.crash_armed.sort()
        report.recovered_workers.sort()
        if aborted:
            raise ElasticAborted(
                f"run aborted after {done_count} commit(s); "
                f"{len(report.incomplete)} task(s) incomplete",
                report,
            )
        return report

    def _shutdown(self, workers: Dict[int, _Worker]) -> None:
        """Stop every worker; no process and no pipe survives the pool."""
        for w in workers.values():
            if w.alive:
                try:
                    w.conn.send(("stop", None, None))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + self.config.drain_timeout_s
        for w in workers.values():
            w.proc.join(timeout=max(0.05, deadline - time.monotonic()))
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=self.config.drain_timeout_s)
                if w.proc.is_alive():  # pragma: no cover - last resort
                    w.proc.kill()
                    w.proc.join()
            try:
                w.conn.close()
            except OSError:
                pass
            if w.status != "dead":
                self._emit(
                    EventType.WORKER,
                    "parallel.worker",
                    phase="exit",
                    worker=w.wid,
                    gen=w.gen,
                    exitcode=w.proc.exitcode,
                    reason="shutdown",
                )

    def __repr__(self) -> str:
        return (
            f"ElasticPool(n_workers={self.n_workers}, "
            f"start_method={self.start_method!r})"
        )


class TaskCheckpoint:
    """Per-task result checkpoints: what a killed run resumes from.

    Holds one committed array per task id, in memory and -- when ``root``
    is given -- as ``task_<id>.npy`` files, so a *different process* can
    resume the ensemble after a kill.  The store is the durable owner of
    completed work: the elastic runner skips every checkpointed task and
    seeds its slab slot from here instead of recomputing.

    Files commit atomically (same-directory tmp file, fsync, rename): a
    writer killed mid-``save`` can never leave a half-written ``.npy`` in
    place of a good one.  Load validates every file and discards (and
    unlinks) any that does not parse -- the task just reruns.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else None
        self._arrays: Dict[int, np.ndarray] = {}
        self.discarded: List[str] = []
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            for stale in sorted(self.root.glob(".tmp-task_*.npy")):
                # An in-flight commit that never renamed; the committed
                # file (if any) is still the previous good generation.
                stale.unlink()
                self.discarded.append(stale.name)
            for path in sorted(self.root.glob("task_*.npy")):
                tid = int(path.stem.split("_", 1)[1])
                try:
                    self._arrays[tid] = np.load(path)
                except (ValueError, OSError, EOFError):
                    path.unlink()
                    self.discarded.append(path.name)

    def save(self, task_id: int, array: np.ndarray) -> None:
        arr = np.array(array, copy=True)
        self._arrays[int(task_id)] = arr
        if self.root is not None:
            name = f"task_{int(task_id):06d}.npy"
            tmp = self.root / f".tmp-{name}"
            with open(tmp, "wb") as f:
                np.save(f, arr)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.root / name)

    def load(self, task_id: int) -> np.ndarray:
        return self._arrays[int(task_id)]

    def task_ids(self) -> List[int]:
        return sorted(self._arrays)

    def __contains__(self, task_id: int) -> bool:
        return int(task_id) in self._arrays

    def __len__(self) -> int:
        return len(self._arrays)

    def __repr__(self) -> str:
        where = str(self.root) if self.root is not None else "memory"
        return f"TaskCheckpoint({len(self._arrays)} task(s), {where})"
