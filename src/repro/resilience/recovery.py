"""Recovery primitives: retry with exponential backoff, circuit breakers.

Both are *virtual-time* constructs: backoff delays are charged to the
simulated device's virtual clock (never a real ``sleep``), and breaker
cooldowns are measured against whatever time source the controller binds
(the device clock when one is in play, an internal monotonic counter
otherwise).  Jitter comes from the controller's seeded RNG so a fault run
replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Optional

__all__ = ["RetryPolicy", "BreakerState", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full-range jitter."""

    max_attempts: int = 3
    base_delay_s: float = 1.0e-3
    multiplier: float = 2.0
    #: Fraction of the nominal delay the jitter may add or subtract.
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("at least one attempt is required")
        if self.base_delay_s < 0 or self.multiplier < 1.0:
            raise ValueError("backoff must not shrink")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff seconds after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        nominal = self.base_delay_s * self.multiplier ** (attempt - 1)
        if self.jitter:
            nominal *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return nominal


class BreakerState(Enum):
    """The classic three-state circuit breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trips after N consecutive failures; probes half-open after a cooldown.

    Single-threaded by design (kernel dispatch is per-thread); the owner
    supplies ``now`` on every call so the breaker works against any clock.
    State transitions are returned (not emitted) so the controller can
    turn them into obs events with full context.
    """

    def __init__(self, name: str, failure_threshold: int = 3, cooldown_s: float = 0.05):
        if failure_threshold < 1:
            raise ValueError("failure threshold must be positive")
        if cooldown_s < 0:
            raise ValueError("cooldown must be non-negative")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.opens = 0
        self.closes = 0

    def allow(self, now: float) -> bool:
        """May a call proceed?  Transitions OPEN -> HALF_OPEN on cooldown."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.opened_at is not None and now - self.opened_at >= self.cooldown_s:
                self.state = BreakerState.HALF_OPEN
                return True  # the single half-open probe
            return False
        # HALF_OPEN: one probe is already in flight this transition.
        return False

    def record_success(self) -> Optional[str]:
        """Returns ``"closed"`` when a half-open probe closes the breaker."""
        was_half_open = self.state is BreakerState.HALF_OPEN
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None
        if was_half_open:
            self.closes += 1
            return "closed"
        return None

    def record_failure(self, now: float) -> Optional[str]:
        """Returns ``"opened"`` when this failure trips the breaker."""
        if self.state is BreakerState.HALF_OPEN:
            # A failed probe re-opens immediately with a fresh cooldown.
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.opens += 1
            return "opened"
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.opens += 1
            return "opened"
        return None

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, {self.state.value}, "
            f"failures={self.consecutive_failures})"
        )
