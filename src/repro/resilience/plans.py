"""Named fault plans: the scenarios the paper's production runs hit.

Each plan is a deterministic scenario replayable from ``(name, seed)``.
The two CI-grade plans -- ``oom-then-recover`` and ``transient-transfer``
-- are designed so recovery keeps execution on the device with the same
implementation, making the final maps **bitwise identical** to a
fault-free run.
"""

from __future__ import annotations

from typing import Dict, List

from .faults import FaultKind, FaultPlan, FaultSpec

__all__ = ["NAMED_PLANS", "named_plan", "plan_names"]


def _plan(name: str, *specs: FaultSpec) -> FaultPlan:
    return FaultPlan(name=name, specs=tuple(specs))


NAMED_PLANS: Dict[str, FaultPlan] = {
    # The Fig 4 scenario: an allocation is denied by external pressure
    # (other processes on the shared device), then succeeds on retry after
    # LRU eviction relieves the pool.  Stays on-device -> bitwise identical.
    "oom-then-recover": _plan(
        "oom-then-recover",
        FaultSpec(site="pool.allocate", kind=FaultKind.OOM, nth=(5,), max_fires=1),
    ),
    # Transient PCIe hiccups in both directions; the transfer layer's
    # retry-with-backoff re-issues the copies.  Bitwise identical.
    "transient-transfer": _plan(
        "transient-transfer",
        FaultSpec(site="transfer.h2d", kind=FaultKind.TRANSFER_FAIL, nth=(2,), max_fires=1),
        FaultSpec(site="transfer.d2h", kind=FaultKind.TRANSFER_FAIL, nth=(1,), max_fires=1),
    ),
    # A copy lands corrupted; checksums detect it and the retry rewrites
    # the bytes.  Bitwise identical.
    "corrupt-transfer": _plan(
        "corrupt-transfer",
        FaultSpec(
            site="transfer.h2d", kind=FaultKind.TRANSFER_CORRUPT, nth=(3,), max_fires=1
        ),
    ),
    # Flaky kernel launches (driver/queue hiccups under device sharing);
    # the dispatch wrapper retries in place.  Bitwise identical.
    "flaky-launch": _plan(
        "flaky-launch",
        FaultSpec(
            site="device.launch", kind=FaultKind.LAUNCH_FAIL, nth=(2, 6), max_fires=2
        ),
    ),
    # The offload path itself fails (the paper's OpenMP target region);
    # retried at dispatch level, falling back to the CPU chain only if it
    # keeps failing.  No-op under backends that never enter a target region.
    "target-flaky": _plan(
        "target-flaky",
        FaultSpec(
            site="ompshim.target_region",
            kind=FaultKind.TARGET_FAIL,
            nth=(2,),
            max_fires=1,
        ),
    ),
    # Device loss mid-pipeline: device-resident data is destroyed and the
    # pipeline resumes from its last per-stage checkpoint.
    "device-loss": _plan(
        "device-loss",
        FaultSpec(
            site="device.launch", kind=FaultKind.DEVICE_LOST, nth=(5,), max_fires=1
        ),
    ),
    # A sharded worker process dies mid-shard; the parallel engine re-runs
    # that worker's observations (each shard is a pure function of the
    # seeded inputs), so the reduced maps stay bitwise identical.
    "worker-crash": _plan(
        "worker-crash",
        FaultSpec(
            site="parallel.worker",
            kind=FaultKind.WORKER_CRASH,
            nth=(2,),
            max_fires=1,
        ),
    ),
    # A worker goes silent mid-task (wedged pipe, paused VM): heartbeats
    # stop, the lease expires, and the elastic pool steals the task for a
    # live worker.  The silent worker keeps computing and rejoins when it
    # resurfaces; first-writer-wins commit keeps the maps bitwise identical.
    "heartbeat-loss": _plan(
        "heartbeat-loss",
        FaultSpec(
            site="parallel.heartbeat",
            kind=FaultKind.HEARTBEAT_LOSS,
            nth=(2,),
            max_fires=1,
        ),
        # The silent worker is also slow: under a lease shorter than the
        # stall the lease genuinely expires and the task is stolen (a
        # fast muted task would finish before its lease ran out).
        FaultSpec(
            site="parallel.task",
            kind=FaultKind.TASK_STALL,
            nth=(2,),
            max_fires=1,
            stall_seconds=1.5,
        ),
    ),
    # One task straggles (noisy neighbour): it sleeps past the hedge
    # deadline and the pool launches a speculative duplicate on an idle
    # worker.  Both produce identical bytes; the first commit wins.
    "straggler": _plan(
        "straggler",
        FaultSpec(
            site="parallel.task",
            kind=FaultKind.TASK_STALL,
            nth=(2,),
            max_fires=1,
            stall_seconds=0.75,
        ),
    ),
    # The hostile-schedule composition: a worker crash, a heartbeat loss,
    # and a straggler in one run -- the elastic pool must steal, hedge,
    # and respawn its way to a map bitwise identical to the clean run.
    "elastic-storm": _plan(
        "elastic-storm",
        FaultSpec(
            site="parallel.worker",
            kind=FaultKind.WORKER_CRASH,
            nth=(2,),
            max_fires=1,
        ),
        FaultSpec(
            site="parallel.heartbeat",
            kind=FaultKind.HEARTBEAT_LOSS,
            nth=(3,),
            max_fires=1,
        ),
        FaultSpec(
            site="parallel.task",
            kind=FaultKind.TASK_STALL,
            nth=(3,),
            max_fires=1,
            stall_seconds=0.5,
        ),
    ),
    # A serving-plane request is dropped in flight (connection reset);
    # the client's retry-with-backoff re-sends it.  Served slices stay
    # byte-identical because the node's cached product never moved.
    "serve-flaky": _plan(
        "serve-flaky",
        FaultSpec(
            site="serve.request",
            kind=FaultKind.REQUEST_DROP,
            nth=(2,),
            max_fires=1,
        ),
    ),
    # A serving node dies mid-request: the broker's per-node breaker
    # records the failure and in-flight clients fail over to another node,
    # which recomputes the product (deterministically, so slices match).
    "serve-node-crash": _plan(
        "serve-node-crash",
        FaultSpec(
            site="serve.node",
            kind=FaultKind.NODE_CRASH,
            nth=(1,),
            max_fires=1,
        ),
    ),
    # The writer is killed mid-commit: only a prefix of the shadow chunk
    # reaches disk.  The live generation is untouched (commit is
    # shadow-write + rename), the spill layer retries the commit, and the
    # open-time scrub clears the torn shadow -- bitwise identical.
    "store-torn-write": _plan(
        "store-torn-write",
        FaultSpec(site="store.write", kind=FaultKind.TORN_WRITE, nth=(2,), max_fires=1),
    ),
    # A stored payload byte flips at rest (bit rot): read-time CRC
    # verification detects it, the chunk is quarantined and regenerated
    # from its registered producer -- bitwise identical.
    "store-bitrot": _plan(
        "store-bitrot",
        FaultSpec(site="store.read", kind=FaultKind.BIT_FLIP, nth=(1,), max_fires=1),
    ),
    # Non-fatal stalls: the device hiccups and the run just takes longer
    # (virtual time); results are untouched.
    "stall": _plan(
        "stall",
        FaultSpec(
            site="device.launch",
            kind=FaultKind.DEVICE_STALL,
            every=4,
            stall_seconds=2.0e-3,
        ),
    ),
}


def plan_names() -> List[str]:
    return sorted(NAMED_PLANS)


def named_plan(name: str, seed: int = 0) -> FaultPlan:
    """Look up a named plan, re-seeded for replayability from the CLI."""
    try:
        plan = NAMED_PLANS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault plan {name!r}; available plans: {', '.join(plan_names())}"
        ) from None
    return plan.with_seed(seed)
