"""The active-controller cell the injection/recovery hooks read.

Mirrors :mod:`repro.obs.state`: hot call sites pay exactly one module
attribute load and one ``is None`` branch when resilience is disabled::

    from repro.resilience import state as res_state
    ...
    ctrl = res_state.active
    if ctrl is not None:
        ctrl.check("pool.allocate", nbytes=size)

Mutate only through :func:`repro.resilience.set_controller` /
:func:`repro.resilience.resilient`.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .controller import ResilienceController

#: The process-wide controller; ``None`` means resilience is off (the default).
active: Optional["ResilienceController"] = None
