"""The resilience controller: one object owning injection and recovery.

The controller is installed process-wide (see :mod:`repro.resilience.state`)
and consulted by hooks in the accelerator, the offload shim, the kernel
dispatch, and the pipeline.  It is three things at once:

* the **injection plane**: :meth:`check` evaluates the fault plan at each
  wired site and raises / returns the injected fault;
* the **recovery plane**: retry-with-backoff on the virtual clock,
  per-(kernel, implementation) circuit breakers, the backend fallback
  chain, and the bookkeeping the pipeline's eviction and checkpoint paths
  use;
* the **witness**: every injected fault and every recovery decision is
  counted here and emitted as a typed ``repro.obs`` event when tracing is
  active, so a fault run's trace shows exactly what happened and why.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..accel.errors import (
    DeviceLostError,
    KernelLaunchError,
    OutOfDeviceMemoryError,
    TransferCorruptionError,
    TransferError,
)
from ..accel.transfer import transfer_checksum
from ..obs import state as obs_state
from ..obs.events import ClockDomain, Event, EventType
from .faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from .recovery import CircuitBreaker, RetryPolicy

__all__ = ["ResilienceConfig", "ResilienceController", "TRANSIENT_ERRORS"]

#: Exception classes the recovery plane treats as transient (retry, then
#: fall back).  ``TargetRegionError`` subclasses ``KernelLaunchError`` so
#: the offload path's failures classify without an ompshim import here.
TRANSIENT_ERRORS: Tuple[type, ...] = (KernelLaunchError, TransferError)

#: Errors the kernel-level wrapper must re-raise untouched: recovery for
#: these lives at the pipeline level (eviction / checkpoint-resume).
_PIPELINE_ERRORS: Tuple[type, ...] = (OutOfDeviceMemoryError, DeviceLostError)

#: Tracer counter names for host-domain resilience events (device-domain
#: events go through ``Tracer.device_event``, which counts them itself).
_RESILIENCE_METRIC = {
    EventType.FAULT_INJECTED: "resilience.faults_injected",
    EventType.RETRY: "resilience.retries",
    EventType.FALLBACK: "resilience.fallbacks",
    EventType.BREAKER_OPEN: "resilience.breaker_opens",
    EventType.BREAKER_CLOSE: "resilience.breaker_closes",
    EventType.EVICT: "resilience.evictions",
    EventType.CHECKPOINT: "resilience.checkpoints",
}


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the recovery plane (injection comes from the plan)."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 3
    #: Virtual seconds an open breaker waits before a half-open probe.
    breaker_cooldown_s: float = 0.05
    #: Walk the implementation fallback chain when a kernel keeps failing.
    fallback: bool = True
    #: On device OOM, stage out LRU non-working-set buffers and retry.
    evict_on_oom: bool = True
    #: Record per-stage checkpoints so device loss resumes, not restarts.
    checkpoint: bool = True
    #: Checksum both ends of guarded transfers.  ``None`` = only when the
    #: plan can inject corruption (keeps clean runs cheap).
    verify_transfers: Optional[bool] = None


class ResilienceController:
    """Injection + recovery + witness; see the module docstring."""

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        config: Optional[ResilienceConfig] = None,
        seed: Optional[int] = None,
    ):
        self.plan = plan
        self.config = config if config is not None else ResilienceConfig()
        self.injector = FaultInjector(plan) if plan is not None else None
        base_seed = plan.seed if plan is not None else (seed if seed is not None else 0)
        #: Recovery-side RNG (jitter, corruption offsets) -- independent of
        #: the injector's stream so recovery draws never perturb replay.
        self.rng = random.Random(base_seed ^ 0x5EED)
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.counters: Dict[str, int] = {}
        self.checkpoints: List[Dict[str, Any]] = []
        self._clock = None
        self._ticks = 0.0
        if self.config.verify_transfers is None:
            self._verify_transfers = plan is not None and any(
                s.kind is FaultKind.TRANSFER_CORRUPT for s in plan.specs
            )
        else:
            self._verify_transfers = self.config.verify_transfers

    # -- time ------------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Use a device :class:`~repro.accel.clock.VirtualClock` for backoff
        charges, breaker cooldowns, and event timestamps."""
        self._clock = clock

    def now(self, clock=None) -> float:
        c = clock if clock is not None else self._clock
        if c is not None:
            return c.now
        return self._ticks

    # -- bookkeeping -----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _emit(self, etype: EventType, name: str, clock=None, **attrs: Any) -> None:
        tr = obs_state.active
        if tr is None:
            return
        c = clock if clock is not None else self._clock
        if c is not None:
            # On the device timeline; device_event also maintains the
            # tracer's resilience aggregate counters.
            tr.device_event(etype, name, ts=c.now, **attrs)
        else:
            tr.emit(
                Event(etype, name, ts=tr.now(), clock=ClockDomain.HOST, attrs=attrs)
            )
            key = _RESILIENCE_METRIC.get(etype)
            if key is not None:
                tr.metrics.count(key)
                if etype is EventType.EVICT:
                    tr.metrics.count(
                        "resilience.evicted_bytes", float(attrs.get("nbytes", 0))
                    )

    # -- injection plane -------------------------------------------------------

    def check(self, site: str, clock=None, **attrs: Any) -> Optional[FaultSpec]:
        """Evaluate the plan at ``site``.

        Raising kinds (OOM, launch failure, device loss, transfer failure)
        raise their exception here; behavioural kinds (stall, corruption,
        target-region failure, torn store writes, bit rot) return the spec
        for the call site to act on.  Either way a FAULT_INJECTED event is
        emitted first.
        """
        if self.injector is None:
            return None
        spec = self.injector.poll(site)
        if spec is None:
            return None
        call = self.injector.calls[site]
        self.count("faults_injected")
        self._emit(
            EventType.FAULT_INJECTED,
            site,
            clock=clock,
            kind=spec.kind.value,
            call=call,
            transient=spec.transient,
            **attrs,
        )
        kind = spec.kind
        if kind is FaultKind.OOM:
            raise OutOfDeviceMemoryError(
                f"[injected fault: {site} call #{call}] allocation denied by "
                f"external memory pressure (plan {self.injector.plan.name!r})"
            )
        if kind is FaultKind.FRAGMENT:
            raise OutOfDeviceMemoryError(
                f"[injected fault: {site} call #{call}] allocation denied: no "
                f"contiguous block under fragmentation pressure "
                f"(plan {self.injector.plan.name!r})"
            )
        if kind is FaultKind.LAUNCH_FAIL:
            raise KernelLaunchError(
                f"[injected fault: {site} call #{call}] kernel launch failed "
                f"transiently (plan {self.injector.plan.name!r})"
            )
        if kind is FaultKind.DEVICE_LOST:
            raise DeviceLostError(
                f"[injected fault: {site} call #{call}] device lost; "
                f"device-resident data destroyed (plan {self.injector.plan.name!r})"
            )
        if kind is FaultKind.TRANSFER_FAIL:
            raise TransferError(
                f"[injected fault: {site} call #{call}] transient transfer "
                f"failure (plan {self.injector.plan.name!r})"
            )
        # DEVICE_STALL / TRANSFER_CORRUPT / TARGET_FAIL / WORKER_CRASH:
        # the caller acts on the returned spec.
        return spec

    # -- retry plane -----------------------------------------------------------

    def backoff(self, site: str, attempt: int, error: BaseException, clock=None) -> None:
        """Charge one exponential-backoff delay (virtual time, seeded jitter)."""
        delay = self.config.retry.delay(attempt, self.rng)
        c = clock if clock is not None else self._clock
        if c is not None:
            c.charge("resilience_backoff", delay)
        else:
            self._ticks += delay
        self.count("retries")
        self._emit(
            EventType.RETRY,
            site,
            clock=clock,
            attempt=attempt,
            backoff_s=delay,
            error=type(error).__name__,
        )

    def guarded_transfer(self, site: str, buf, host: np.ndarray, clock=None) -> int:
        """One host<->device copy under injection + retry.

        ``site`` is ``"transfer.h2d"`` or ``"transfer.d2h"``; ``buf`` is the
        :class:`~repro.accel.buffer.DeviceBuffer`, ``host`` the (contiguous)
        host array.  Transient failures and detected corruption re-issue
        the copy after a backoff; the bytes moved are returned.
        """
        h2d = site == "transfer.h2d"
        policy = self.config.retry
        last: Optional[TransferError] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                spec = self.check(site, clock=clock, nbytes=int(host.nbytes))
                moved = buf.write_from(host) if h2d else buf.read_into(host)
                corrupt = spec is not None and spec.kind is FaultKind.TRANSFER_CORRUPT
                if corrupt:
                    k = self.rng.randrange(max(1, moved))
                    if h2d:
                        buf.corrupt_byte(k)
                    else:
                        host.view(np.uint8).reshape(-1)[k % max(1, moved)] ^= 0xFF
                if corrupt or self._verify_transfers:
                    src = transfer_checksum(host, moved) if h2d else buf.checksum(moved)
                    dst = buf.checksum(moved) if h2d else transfer_checksum(host, moved)
                    if src != dst:
                        raise TransferCorruptionError(
                            f"{site}: checksum mismatch after copying {moved} "
                            f"bytes (source {src:#010x} != destination {dst:#010x}); "
                            "the copy was corrupted in flight"
                        )
                return moved
            except TransferError as e:
                last = e
                if attempt >= policy.max_attempts:
                    raise
                self.backoff(site, attempt, e, clock=clock)
        raise last if last is not None else AssertionError("unreachable")

    # -- breakers + fallback chain ---------------------------------------------

    def breaker(self, key: str) -> CircuitBreaker:
        br = self.breakers.get(key)
        if br is None:
            br = self.breakers[key] = CircuitBreaker(
                key,
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
            )
        return br

    def resilient_kernel(
        self,
        name: str,
        requested,
        registry,
        chain: Sequence,
        accel_impls: Tuple,
    ) -> Callable:
        """The callable ``get_kernel`` returns under resilience.

        ``chain`` is the implementation fallback order starting at the
        requested implementation, already filtered to registered ones.
        Each link has a circuit breaker; transient failures retry with
        backoff, then fall through to the next link.  Falling from an
        accelerated implementation to a host one syncs mapped arrays back
        first (and refreshes the device after) so data stays coherent.
        """

        def call(*args: Any, **kwargs: Any) -> Any:
            policy = self.config.retry
            last_err: Optional[BaseException] = None
            for pos, impl in enumerate(chain):
                br = self.breaker(f"{name}:{impl.value}")
                if not br.allow(self.now()):
                    self.count("breaker_skips")
                    continue
                if pos > 0:
                    self.count("fallbacks")
                    self._emit(
                        EventType.FALLBACK,
                        name,
                        requested=requested.value,
                        to=impl.value,
                        reason=(
                            type(last_err).__name__
                            if last_err is not None
                            else "breaker_open"
                        ),
                    )
                fn = registry.get(name, impl, allow_fallback=False)
                host_sync = (
                    requested in accel_impls
                    and impl not in accel_impls
                    and bool(kwargs.get("use_accel"))
                    and kwargs.get("accel") is not None
                )
                for attempt in range(1, policy.max_attempts + 1):
                    try:
                        if host_sync:
                            result = self._run_on_host(fn, args, kwargs)
                        else:
                            result = fn(*args, **kwargs)
                    except _PIPELINE_ERRORS:
                        raise  # eviction / checkpoint-resume owns these
                    except TRANSIENT_ERRORS as e:
                        last_err = e
                        if br.record_failure(self.now()) == "opened":
                            self.count("breaker_opens")
                            self._emit(
                                EventType.BREAKER_OPEN,
                                br.name,
                                failures=br.consecutive_failures,
                                cooldown_s=br.cooldown_s,
                            )
                        if attempt < policy.max_attempts and self.plan is not None:
                            self.backoff(f"kernel.{name}", attempt, e)
                            continue
                        break  # exhausted: next implementation
                    else:
                        if br.record_success() == "closed":
                            self.count("breaker_closes")
                            self._emit(EventType.BREAKER_CLOSE, br.name)
                        return result
                if not self.config.fallback:
                    break
            if last_err is not None:
                raise last_err
            open_names = sorted(
                k for k, b in self.breakers.items() if k.startswith(f"{name}:")
            )
            raise KernelLaunchError(
                f"kernel {name!r}: no implementation available "
                f"(fallback chain exhausted; breakers: {open_names})"
            )

        return call

    def _run_on_host(self, fn: Callable, args: Tuple, kwargs: Dict) -> Any:
        """Run a host implementation coherently mid-accelerated-pipeline.

        Device-mapped array arguments are synced back to the host before
        the call and pushed to the device after, so neither side goes
        stale when execution bounces between paths.
        """
        runtime = kwargs.get("accel")
        present: List[np.ndarray] = []
        seen: set = set()
        for a in (*args, *kwargs.values()):
            if isinstance(a, np.ndarray) and id(a) not in seen:
                seen.add(id(a))
                if runtime is not None and runtime.is_present(a):
                    present.append(a)
        for a in present:
            runtime.target_update_from(a)
        kw = dict(kwargs, use_accel=False, accel=None)
        result = fn(*args, **kw)
        for a in present:
            runtime.target_update_to(a)
        self.count("host_syncs")
        return result

    # -- pipeline recovery bookkeeping -----------------------------------------

    def record_eviction(self, name: str, nbytes: int, clock=None, **attrs: Any) -> None:
        self.count("evictions")
        self._emit(EventType.EVICT, name, clock=clock, nbytes=int(nbytes), **attrs)

    def record_host_fallback(self, op_name: str, reason: str, clock=None) -> None:
        self.count("fallbacks")
        self._emit(
            EventType.FALLBACK, op_name, clock=clock, to="host", reason=reason
        )

    def record_checkpoint(self, manifest: Dict[str, Any], clock=None) -> None:
        self.count("checkpoints")
        if len(self.checkpoints) >= 1024:
            del self.checkpoints[0]
        self.checkpoints.append(dict(manifest))
        self._emit(EventType.CHECKPOINT, str(manifest.get("op", "stage")), clock=clock, **manifest)

    def record_worker_recovery(self, rank: int, n_obs: int, clock=None) -> None:
        """A crashed shard worker's observations were re-run successfully."""
        self.count("worker_recoveries")
        self._emit(
            EventType.RETRY,
            "parallel.worker.rerun",
            clock=clock,
            rank=rank,
            n_obs=n_obs,
            reason="worker_crash",
        )

    def record_device_recovery(self, op_name: str, stage: int, clock=None) -> None:
        self.count("device_recoveries")
        self._emit(
            EventType.RETRY,
            "pipeline.resume",
            clock=clock,
            op=op_name,
            stage=stage,
            reason="device_lost",
        )

    # -- reporting -------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """Everything a recovery report needs, as plain data."""
        return {
            "plan": self.plan.name if self.plan is not None else None,
            "seed": self.plan.seed if self.plan is not None else None,
            "counters": dict(self.counters),
            "faults": (
                [r.as_dict() for r in self.injector.log]
                if self.injector is not None
                else []
            ),
            "breakers": {k: b.state.value for k, b in sorted(self.breakers.items())},
            "checkpoints": len(self.checkpoints),
            "last_checkpoint": self.checkpoints[-1] if self.checkpoints else None,
        }

    def __repr__(self) -> str:
        plan = self.plan.name if self.plan is not None else None
        return f"ResilienceController(plan={plan!r}, counters={self.counters})"
