"""Deterministic fault injection: kinds, specs, plans, and the injector.

A :class:`FaultPlan` is a named, seeded set of :class:`FaultSpec` triggers.
Determinism is the design center: given the same plan (seed included) and
the same sequence of calls at each injection site, exactly the same faults
fire at exactly the same calls -- so a failing fault run can be replayed
bit-for-bit from its plan name and seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "FaultInjector", "SITES"]


class FaultKind(Enum):
    """What goes wrong when a spec fires."""

    #: Transient kernel-launch failure (driver/queue hiccup).
    LAUNCH_FAIL = "launch_fail"
    #: The device stalls: extra virtual time is charged, no exception.
    DEVICE_STALL = "device_stall"
    #: The device is lost; device-resident data is destroyed.
    DEVICE_LOST = "device_lost"
    #: A device allocation is denied (external memory pressure).
    OOM = "oom"
    #: A device allocation is denied citing fragmentation pressure.
    FRAGMENT = "fragment"
    #: A host<->device copy fails transiently before moving bytes.
    TRANSFER_FAIL = "transfer_fail"
    #: A copy completes but corrupts a byte; checksums detect it.
    TRANSFER_CORRUPT = "transfer_corrupt"
    #: An OpenMP target region fails to launch (the paper's offload path).
    TARGET_FAIL = "target_fail"
    #: A sharded worker process dies mid-shard (OOM-killed, segfault...).
    WORKER_CRASH = "worker_crash"
    #: A worker stops heartbeating (wedged pipe, paused VM); the pool's
    #: lease on its task expires and the task is stolen by a live worker.
    HEARTBEAT_LOSS = "heartbeat_loss"
    #: One task stalls (cold cache, noisy neighbour); the pool hedges a
    #: speculative duplicate once the straggler deadline passes.
    TASK_STALL = "task_stall"
    #: A serving-plane request or its response is dropped in flight
    #: (connection reset, router restart); the client retries.
    REQUEST_DROP = "request_drop"
    #: A serving node dies while handling a request; the broker's breaker
    #: trips and in-flight clients fail over to another node.
    NODE_CRASH = "node_crash"
    #: The writer is killed mid-commit: only a prefix of the shadow chunk
    #: (or manifest) reaches disk.  The live generation is never touched;
    #: the open-time scrub detects and clears the torn shadow.
    TORN_WRITE = "torn_write"
    #: A stored byte flips at rest (bit rot); read-time CRC verification
    #: detects it and the chunk is quarantined and regenerated.
    BIT_FLIP = "bit_flip"


#: The injection sites wired into the runtime layers.
SITES = (
    "device.launch",
    "pool.allocate",
    "transfer.h2d",
    "transfer.d2h",
    "ompshim.target_region",
    "parallel.worker",
    "parallel.heartbeat",
    "parallel.task",
    "serve.request",
    "serve.node",
    "store.write",
    "store.read",
    "store.manifest",
)

#: Which kinds make sense at which site (validated at spec construction).
_SITE_KINDS = {
    "device.launch": (FaultKind.LAUNCH_FAIL, FaultKind.DEVICE_STALL, FaultKind.DEVICE_LOST),
    "pool.allocate": (FaultKind.OOM, FaultKind.FRAGMENT),
    "transfer.h2d": (FaultKind.TRANSFER_FAIL, FaultKind.TRANSFER_CORRUPT),
    "transfer.d2h": (FaultKind.TRANSFER_FAIL, FaultKind.TRANSFER_CORRUPT),
    "ompshim.target_region": (FaultKind.TARGET_FAIL,),
    "parallel.worker": (FaultKind.WORKER_CRASH,),
    "parallel.heartbeat": (FaultKind.HEARTBEAT_LOSS,),
    "parallel.task": (FaultKind.TASK_STALL,),
    "serve.request": (FaultKind.REQUEST_DROP,),
    "serve.node": (FaultKind.NODE_CRASH,),
    "store.write": (FaultKind.TORN_WRITE,),
    "store.read": (FaultKind.BIT_FLIP,),
    "store.manifest": (FaultKind.TORN_WRITE,),
}

#: Kinds the recovery plane classifies as transient (retry is expected to
#: succeed once the external condition clears).
TRANSIENT_KINDS = (
    FaultKind.LAUNCH_FAIL,
    FaultKind.TRANSFER_FAIL,
    FaultKind.TRANSFER_CORRUPT,
    FaultKind.TARGET_FAIL,
    FaultKind.OOM,
    FaultKind.FRAGMENT,
    FaultKind.WORKER_CRASH,
    FaultKind.HEARTBEAT_LOSS,
    FaultKind.TASK_STALL,
    FaultKind.REQUEST_DROP,
    FaultKind.NODE_CRASH,
    FaultKind.TORN_WRITE,
    FaultKind.BIT_FLIP,
)


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: where, what, and when it fires.

    ``nth`` fires at specific 1-based call numbers of the site; ``every``
    fires at every multiple of a call count; ``probability`` draws from
    the plan's seeded RNG at every call.  ``max_fires`` caps how often the
    spec fires over a run (``None`` = unlimited).
    """

    site: str
    kind: FaultKind
    nth: Tuple[int, ...] = ()
    every: int = 0
    probability: float = 0.0
    max_fires: Optional[int] = None
    #: Extra virtual seconds charged by a DEVICE_STALL.
    stall_seconds: float = 5.0e-3
    #: Plan-chosen byte offset for TORN_WRITE / BIT_FLIP (how many bytes
    #: land before the kill, or which payload byte flips).  ``None`` lets
    #: the controller derive a deterministic offset from its seeded RNG.
    offset: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in _SITE_KINDS:
            raise ValueError(f"unknown injection site {self.site!r}; known: {SITES}")
        if self.kind not in _SITE_KINDS[self.site]:
            allowed = ", ".join(k.value for k in _SITE_KINDS[self.site])
            raise ValueError(
                f"fault kind {self.kind.value!r} cannot fire at site "
                f"{self.site!r} (allowed there: {allowed})"
            )
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        if self.every < 0 or any(n < 1 for n in self.nth):
            raise ValueError("nth entries are 1-based; every must be >= 0")
        if not self.nth and not self.every and self.probability == 0.0:
            raise ValueError("spec never fires: give nth, every, or probability")
        if self.stall_seconds < 0:
            raise ValueError("stall must be non-negative")
        if self.offset is not None and self.offset < 0:
            raise ValueError("offset must be non-negative")

    @property
    def transient(self) -> bool:
        return self.kind in TRANSIENT_KINDS


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of fault specs."""

    name: str
    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def with_seed(self, seed: int) -> "FaultPlan":
        return FaultPlan(name=self.name, specs=self.specs, seed=seed)

    def sites(self) -> List[str]:
        return sorted({s.site for s in self.specs})


@dataclass
class _FiredRecord:
    """One log entry: replay evidence for a fired fault.

    ``seq`` is the global firing order across every site, so a printed
    timeline shows how faults at different sites interleaved.
    """

    site: str
    kind: str
    call: int
    seq: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {"seq": self.seq, "site": self.site, "kind": self.kind, "call": self.call}


class FaultInjector:
    """Evaluates a plan against the live call stream.

    Per-site call counters plus one ``random.Random(plan.seed)`` make the
    outcome a pure function of the call sequence: probability draws happen
    for every probabilistic spec at every call of its site, whether or not
    an earlier spec already fired, so the RNG stream never desynchronises
    between a run and its replay.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.calls: Dict[str, int] = {}
        self._fires: Dict[int, int] = {}
        self.log: List[_FiredRecord] = []

    def poll(self, site: str) -> Optional[FaultSpec]:
        """Count a call at ``site``; return the spec that fires, if any."""
        n = self.calls.get(site, 0) + 1
        self.calls[site] = n
        fired: Optional[FaultSpec] = None
        for idx, spec in enumerate(self.plan.specs):
            if spec.site != site:
                continue
            hit = bool(spec.nth and n in spec.nth)
            if spec.every and n % spec.every == 0:
                hit = True
            if spec.probability > 0.0 and self.rng.random() < spec.probability:
                hit = True
            if not hit:
                continue
            if spec.max_fires is not None and self._fires.get(idx, 0) >= spec.max_fires:
                continue
            self._fires[idx] = self._fires.get(idx, 0) + 1
            if fired is None:
                fired = spec
                self.log.append(
                    _FiredRecord(
                        site=site, kind=spec.kind.value, call=n, seq=len(self.log) + 1
                    )
                )
        return fired

    @property
    def total_fired(self) -> int:
        return len(self.log)

    def __repr__(self) -> str:
        return (
            f"FaultInjector({self.plan.name!r}, seed={self.plan.seed}, "
            f"{self.total_fired} fired)"
        )
