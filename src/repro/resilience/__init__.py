"""repro.resilience — deterministic fault injection + recovery.

The paper's production runs hit exactly the failure modes this package
models: the medium problem does not fit the A100's 40 GB under JAX
(Fig 4), and multi-process device sharing makes transient launch and
transfer failures a fact of life at Perlmutter scale.  The package has
two planes layered over the existing stack:

* **Injection**: a seeded, deterministic :class:`FaultPlan` with hooks in
  the device (launch failure, stall, loss), the memory pool (forced OOM,
  fragmentation pressure), the transfer path (transient failure,
  corruption-with-checksum-detect), and the offload shim (target-region
  failure).  Same plan + same call sequence = same faults, bit for bit.
* **Recovery**: a backend fallback chain (JAX → OMP_TARGET → NUMPY →
  PYTHON) with per-kernel circuit breakers, retry-with-exponential-backoff
  on the virtual clock, LRU eviction + host fallback on device OOM, and
  per-stage pipeline checkpoints so device loss resumes instead of
  restarting.

Resilience is **off by default and free when off** (the same
one-attribute-load-and-branch discipline as ``repro.obs``), and every
injected fault and recovery decision emits a typed ``repro.obs`` event
when tracing is active::

    from repro import resilience

    plan = resilience.named_plan("oom-then-recover", seed=42)
    with resilience.resilient(plan) as ctrl:
        pipeline.apply(data)
    print(ctrl.report())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from . import state as _state
from .controller import ResilienceConfig, ResilienceController, TRANSIENT_ERRORS
from .faults import SITES, FaultInjector, FaultKind, FaultPlan, FaultSpec
from .plans import NAMED_PLANS, named_plan, plan_names
from .recovery import BreakerState, CircuitBreaker, RetryPolicy

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "SITES",
    "RetryPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ResilienceConfig",
    "ResilienceController",
    "TRANSIENT_ERRORS",
    "NAMED_PLANS",
    "named_plan",
    "plan_names",
    "active_controller",
    "set_controller",
    "resilient",
]


def active_controller() -> Optional[ResilienceController]:
    """The installed controller, or ``None`` when resilience is disabled.

    Hooks use the equivalent (but cheaper) direct check
    ``repro.resilience.state.active is not None``.
    """
    return _state.active


def set_controller(
    controller: Optional[ResilienceController],
) -> Optional[ResilienceController]:
    """Install (or with ``None`` remove) the process-wide controller."""
    previous = _state.active
    _state.active = controller
    return previous


@contextmanager
def resilient(
    plan: Optional[FaultPlan] = None,
    config: Optional[ResilienceConfig] = None,
    seed: Optional[int] = None,
) -> Iterator[ResilienceController]:
    """Enable resilience for a ``with`` block; restores the prior state.

    With no plan, only the recovery plane is active (useful to harden a
    run against real faults without injecting any).
    """
    ctrl = ResilienceController(plan=plan, config=config, seed=seed)
    previous = set_controller(ctrl)
    try:
        yield ctrl
    finally:
        set_controller(previous)
