"""Fig 3 reproduction: lines of code per kernel per implementation."""

from repro.kernels import KERNEL_NAMES
from repro.workflows.report import fig3_loc_per_kernel


def test_fig3_loc_per_kernel(benchmark, publish):
    table, per = benchmark(fig3_loc_per_kernel)
    publish("fig3_loc_per_kernel", table)

    assert set(per["cpu_baseline"]) == set(KERNEL_NAMES)
    for name in KERNEL_NAMES:
        # The OMP port of every kernel carries offload overhead beyond the
        # CPU loop body (Fig 3's consistent pattern).
        assert per["omp_target"][name] > per["cpu_baseline"][name]
        # No kernel degenerates to a stub in any implementation.
        for impl in per:
            assert per[impl][name] >= 10

    # The heavyweight kernels of the paper's Fig 3 are the long ones here
    # too: stokes_weights_IQU and build_noise_weighted top the simple
    # scaling kernels in every implementation.
    for impl in per:
        assert per[impl]["stokes_weights_IQU"] > per[impl]["noise_weight"]
        assert per[impl]["build_noise_weighted"] > per[impl]["stokes_weights_I"]
