"""Ablation: interval padding (dummy work) vs in-loop guard.

Paper footnote 8: the JAX port pads intervals (out-of-range lanes do dummy
work) while the OMP port guards with a conditional; "later tests showed no
significant performance difference between both patterns".  Both patterns
run live here on the same workload and must agree in results, with
comparable modeled iteration counts.
"""

import numpy as np

from repro.core.dispatch import ImplementationType, kernel_registry
from repro.kernels.common import pad_intervals

N_DET = 8
N_SAMP = 16384
# Deliberately ragged intervals: padding waste is the worst case.
STARTS = np.array([0, 3000, 5000, 12000], dtype=np.int64)
STOPS = np.array([2500, 3600, 11000, 16384], dtype=np.int64)

def args():
    rng = np.random.default_rng(77)  # fresh stream: identical inputs per call
    return dict(
        tod=rng.normal(size=(N_DET, N_SAMP)),
        det_weights=rng.uniform(0.5, 2.0, N_DET),
        starts=STARTS,
        stops=STOPS,
    )


def test_padding_vs_guard_equivalence(benchmark, publish):
    """The padded (JAX) and guarded (OMP) noise_weight agree exactly."""
    jax_fn = kernel_registry.get("noise_weight", ImplementationType.JAX)
    omp_fn = kernel_registry.get("noise_weight", ImplementationType.OMP_TARGET)

    a1 = args()
    rng_state = a1["tod"].copy()
    jax_fn(**a1)
    a2 = args()
    a2["tod"][:] = rng_state
    omp_fn(**a2)
    np.testing.assert_allclose(a1["tod"], a2["tod"], rtol=1e-14)

    # Padding overhead: lanes processed vs lanes needed.
    _, valid, max_len = pad_intervals(STARTS, STOPS)
    lanes_padded = valid.size
    lanes_needed = int(valid.sum())
    overhead = lanes_padded / lanes_needed - 1.0

    a3 = args()
    benchmark(lambda: jax_fn(**a3))

    lines = [
        "ablation: interval padding vs guard (paper footnote 8)",
        f"  intervals               : {list(zip(STARTS, STOPS))}",
        f"  padded lanes            : {lanes_padded}",
        f"  needed lanes            : {lanes_needed}",
        f"  dummy-work overhead     : {overhead:.1%}",
        "  results                 : bit-identical between patterns",
    ]
    publish("ablation_padding", "\n".join(lines))


def test_guard_pattern_wall_time(benchmark):
    omp_fn = kernel_registry.get("noise_weight", ImplementationType.OMP_TARGET)
    a = args()
    benchmark(lambda: omp_fn(**a))
