"""Measured performance: batched kernels and live multiprocess sharding.

Unlike the figure benches (which regenerate the paper's *modeled* plots),
this bench records real wall-clock behaviour of the two measured
optimisations: the detector-batched ``numpy`` kernels against the
``python`` oracle, and the satellite workflow sharded across live worker
processes.  The archived table is the human-readable companion to the
committed ``BENCH_*.json`` records (see docs/performance.md).
"""

import os

import pytest

from repro.core import ImplementationType
from repro.parallel import run_parallel_satellite
from repro.utils.table import Table
from repro.workflows.microbench import microbench_kernels
from repro.workflows.satellite import SIZES


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def test_kernel_batching_speedup(benchmark, publish):
    rows = benchmark.pedantic(
        microbench_kernels,
        kwargs=dict(n_det=16, n_samp=2048, repeats=1),
        iterations=1,
        rounds=1,
    )
    table = Table(
        ["kernel", "python [s]", "numpy [s]", "speedup"],
        title="measured kernel batching speedup (python -> numpy)",
    )
    for r in rows:
        table.add_row(
            [r["kernel"], r["python_seconds"], r["numpy_seconds"],
             f"{r['speedup']:.1f}x"]
        )
    publish("perf_kernel_batching", table.render())

    # The acceptance floor: every batched kernel >= 5x over the oracle.
    slow = [r["kernel"] for r in rows if r["speedup"] < 5.0]
    assert not slow, f"kernels under the 5x batching floor: {slow}"


def test_parallel_sharding_measured(benchmark, publish):
    """Live process sweep on the small size; bitwise-equal at any width."""
    size = SIZES["small"]
    procs = [1, 2, 4]

    def sweep():
        return {p: run_parallel_satellite(size, n_procs=p) for p in procs}

    runs = benchmark.pedantic(sweep, iterations=1, rounds=1)

    table = Table(
        ["processes", "measured [s]", "speedup vs 1"],
        title=f"measured process sweep: {size.name} / numpy on {_cpus()} CPU(s)",
    )
    base = runs[1]["wall_seconds"]
    for p in procs:
        table.add_row(
            [p, runs[p]["wall_seconds"], f"{base / runs[p]['wall_seconds']:.2f}x"]
        )
    publish("perf_parallel_sweep", table.render())

    # Sharding must never change the answer, whatever it does to speed.
    ref = runs[1]["zmap"].tobytes()
    for p in procs[1:]:
        assert runs[p]["zmap"].tobytes() == ref
    assert runs[4]["n_workers"] == min(4, size.n_observations)

    # Wall-clock scaling is hardware-dependent; only assert it where the
    # host can physically deliver it.
    if _cpus() >= 4:
        assert runs[4]["wall_seconds"] < base
