"""Ablation: XLA-style kernel fusion vs one-kernel-per-operation.

Paper §2.3: JAX's value comes from a JIT compiler that can "fuse kernels
and elide intermediate results".  This bench traces a representative
kernel (the IQU Stokes weights math) and compares the modeled device time
of the fused graph against the unfused counterfactual where every
operation launches separately and every intermediate round-trips through
device memory.
"""

import numpy as np

from repro.accel import SimulatedDevice
from repro.jaxshim import config, jit, jnp
from repro.utils.table import Table, format_seconds


def stokes_math(q, hwp):
    """The elementwise core of stokes_weights_IQU (no gathers/scatters)."""
    x, y, z, w = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    dx = 2.0 * (x * z + w * y)
    dy = 2.0 * (y * z - w * x)
    dz = 1.0 - 2.0 * (x * x + y * y)
    ox = 1.0 - 2.0 * (y * y + z * z)
    oy = 2.0 * (x * y + w * z)
    oz = 2.0 * (x * z - w * y)
    pa_y = oy * dx - ox * dy
    pa_x = oz * (dx * dx + dy * dy) - dz * (ox * dx + oy * dy)
    angle = jnp.arctan2(pa_y, -pa_x) + 2.0 * hwp
    return jnp.stack([jnp.cos(2.0 * angle), jnp.sin(2.0 * angle)], axis=1)


def test_ablation_fusion(benchmark, publish):
    n = 1 << 20

    with config.temporarily(enable_x64=True):
        jf = jit(stokes_math)
        rng = np.random.default_rng(5)
        q = rng.normal(size=(n, 4))
        hwp = rng.uniform(0, 2 * np.pi, n)

        benchmark(lambda: jf(q, hwp))
        exe = jf.compiled_for(q, hwp)

    dev = SimulatedDevice()
    fused = exe.modeled_execution_time(dev) + exe.n_kernels * dev.spec.kernel_launch_overhead_s
    unfused = exe.modeled_execution_time_unfused(dev)

    table = Table(["quantity", "value"], title="ablation - kernel fusion (paper 2.3)")
    table.add_row(["graph operations", exe.n_eqns])
    table.add_row(["fused kernel launches", exe.n_kernels])
    table.add_row(["modeled time, fused", format_seconds(fused)])
    table.add_row(["modeled time, unfused", format_seconds(unfused)])
    table.add_row(["fusion benefit", f"{unfused / fused:.1f}x"])
    publish("ablation_fusion", table.render())

    assert exe.n_kernels < exe.n_eqns
    # Eliding intermediates on a bandwidth-bound chain is worth a lot.
    assert unfused / fused > 3.0
