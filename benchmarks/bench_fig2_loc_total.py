"""Fig 2 reproduction: total lines of code per implementation.

The benchmarked work is the cloc-style counting pass itself over all four
kernel implementation trees; the published table is the figure.
"""

from repro.workflows.report import fig2_loc_total, loc_totals


def test_fig2_loc_total(benchmark, publish):
    table, rows = benchmark(fig2_loc_total)
    publish("fig2_loc_total", table)

    cpu_kernel, cpu_total = rows["cpu_baseline"]
    jax_kernel, jax_total = rows["jax"]
    omp_kernel, omp_total = rows["omp_target"]

    # Paper shape: the OMP port is substantially longer than the CPU
    # baseline (1.8x there; pragma/mapping/guard overhead here too).
    assert 1.4 < omp_kernel / cpu_kernel < 2.4
    # The OMP port's accelerator machinery (pool + data movement) makes
    # its dependency overhead the largest of the three.
    assert (omp_total - omp_kernel) > (jax_total - jax_kernel)
    # Every implementation is non-trivial.
    for impl in rows:
        assert loc_totals(impl)[0] > 100
