"""Ablation: GPU sharing with and without NVIDIA MPS.

Paper §3.1.2: the OMP port *needs* MPS to oversubscribe GPUs -- without it
the CUDA driver context-switches and performance caps at one process per
device.  §3.1.3: JAX does not need MPS.
"""

import pytest

from repro.accel import GpuSharingModel
from repro.mpi import SimWorld
from repro.perfmodel import Backend, accel_runtime, cpu_runtime
from repro.utils.table import Table, format_seconds


def sweep_mps():
    table = Table(
        ["processes", "OMP + MPS", "OMP no MPS", "JAX (either)"],
        title="ablation - oversubscription with and without MPS (medium, 1 node)",
    )
    rows = {}
    for p in (4, 8, 16, 32):
        w = SimWorld(1, p)
        omp_mps = accel_runtime(Backend.OMP, w, mps_enabled=True)
        omp_raw = accel_runtime(Backend.OMP, w, mps_enabled=False)
        jax = accel_runtime(Backend.JAX, w, mps_enabled=False)
        rows[p] = (omp_mps, omp_raw, jax)
        table.add_row(
            [p, format_seconds(omp_mps), format_seconds(omp_raw), format_seconds(jax)]
        )
    return table.render(), rows


def test_ablation_mps_runtime_model(benchmark, publish):
    table, rows = benchmark(sweep_mps)
    publish("ablation_mps", table)

    for p, (omp_mps, omp_raw, jax) in rows.items():
        if p > 4:
            # Without MPS, oversubscription brings nothing: runtime is
            # stuck at the 4-process level while the MPS run keeps gaining.
            assert omp_raw > omp_mps
        # JAX's own runtime stack shares devices without MPS (3.1.3).
        assert jax < cpu_runtime(p)
    # Capped exactly at one process per device.
    assert rows[16][1] == pytest.approx(rows[4][0])


def test_ablation_mps_sharing_micro(benchmark):
    """The device-level sharing multiplier behind the runtime model."""

    def multipliers():
        return {
            (ppg, mps): GpuSharingModel(ppg, mps).kernel_time_multiplier()
            for ppg in (1, 2, 4, 8)
            for mps in (True, False)
        }

    m = benchmark(multipliers)
    for ppg in (2, 4, 8):
        assert m[(ppg, False)] == ppg  # context switching serializes
        assert m[(ppg, True)] < 1.5  # MPS keeps kernels concurrent
