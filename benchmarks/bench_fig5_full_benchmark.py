"""Fig 5 reproduction: the large problem on 8 nodes.

The model prints the figure (including the JAX-CPU-backend data point the
paper describes in the text); the benchmarked live run is the complete
scaled workflow -- simulation, processing pipeline, and map-making -- on
the small size, once per backend.
"""

import numpy as np
import pytest

from repro.accel import SimulatedDevice
from repro.core import ImplementationType
from repro.ompshim import OmpTargetRuntime
from repro.perfmodel import Backend
from repro.workflows.report import fig5_full_benchmark
from repro.workflows.satellite import SIZES, run_satellite_benchmark


def test_fig5_model(benchmark, publish):
    table, times = benchmark(fig5_full_benchmark)
    publish("fig5_full_benchmark", table)

    cpu = times[Backend.CPU]
    assert cpu / times[Backend.JAX] == pytest.approx(2.28)
    assert cpu / times[Backend.OMP] == pytest.approx(2.58)
    # Text of 4.2: the forced CPU backend is 7.4x *slower*.
    assert times[Backend.JAX_CPU_BACKEND] / cpu == pytest.approx(7.4)
    assert times[Backend.OMP] < times[Backend.JAX] < cpu


def test_fig5_live_full_workflow(benchmark, publish):
    """The whole benchmark workflow, live, with per-region accounting."""
    size = SIZES["small"]

    def run():
        accel = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 30))
        return run_satellite_benchmark(
            size, ImplementationType.OMP_TARGET, accel=accel, mapmaking=True
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["mapmaker_iterations"] > 0
    assert np.any(result["destriped_map"] != 0)

    lines = ["live full workflow (small size, omp_target backend):"]
    for region, seconds in sorted(result["virtual_regions"].items()):
        lines.append(f"  {region:<32s} {seconds * 1e3:10.3f} ms (virtual)")
    lines.append(f"  wall seconds (host): {result['wall_seconds']:.2f}")
    publish("fig5_live_workflow", "\n".join(lines))


def test_fig5_outputs_identical_across_backends(benchmark):
    """The three backends compute the same maps (the physics is shared)."""
    size = SIZES["tiny"]

    def all_three():
        out = {}
        for impl in (
            ImplementationType.NUMPY,
            ImplementationType.JAX,
            ImplementationType.OMP_TARGET,
        ):
            accel = None
            if impl is not ImplementationType.NUMPY:
                accel = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 28))
            out[impl] = run_satellite_benchmark(size, impl, accel=accel)
        return out

    results = benchmark.pedantic(all_three, rounds=1, iterations=1)
    base = results[ImplementationType.NUMPY]
    for impl, res in results.items():
        np.testing.assert_allclose(res["zmap"], base["zmap"], atol=1e-9)
        np.testing.assert_allclose(
            res["destriped_map"], base["destriped_map"], atol=1e-9
        )


def test_ext_energy_model(benchmark, publish):
    """Extension: the intro's energy argument, quantified on Fig 5."""
    from repro.perfmodel import full_benchmark_energy
    from repro.utils.table import Table

    energy = benchmark(full_benchmark_energy)
    cpu_j = energy[Backend.CPU]
    table = Table(
        ["implementation", "modeled energy [MJ]", "vs CPU"],
        title="extension - energy per large-benchmark run (8 nodes)",
    )
    for b in (Backend.CPU, Backend.JAX, Backend.OMP):
        table.add_row([b.value, energy[b] / 1e6, cpu_j / energy[b]])
    publish("ext_energy", table.render())

    # Intro: "GPUs offer lower energy consumption" -- the accelerated runs
    # finish enough faster to win on joules despite higher node power.
    assert energy[Backend.OMP] < energy[Backend.JAX] < cpu_j
