"""Ablation: asynchronous submission and host/device overlap.

Paper §2.2.2: compilers attempt internal asynchronous data movement and
kernel submission, but "to achieve a satisfactory overlap between kernel
submission and execution, manual specification of data dependencies is
often indispensable".  This bench runs a kernel-plus-host-work loop both
ways and quantifies the overlap the ``nowait`` path buys on the modeled
timeline.
"""

import numpy as np

from repro.accel import SimulatedDevice
from repro.ompshim import OmpTargetRuntime
from repro.utils.table import Table, format_seconds

N_STEPS = 8
GRID = (64, 16, 8192)
HOST_WORK_S = 2.0e-3


def run(nowait: bool) -> float:
    rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 24))
    for _ in range(N_STEPS):
        rt.target_teams_distribute_parallel_for(
            "pipeline_kernel",
            GRID,
            lambda i, j, k: None,
            bytes_per_iteration=400.0,
            nowait=nowait,
        )
        # The serial host-side work of the next pipeline stage.
        rt.device.clock.charge("host_side_work", HOST_WORK_S)
    rt.taskwait()
    return rt.device.clock.now


def test_ablation_async_overlap(benchmark, publish):
    t_async = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    t_sync = run(False)

    kernel_s = N_STEPS * (
        np.prod(GRID) * 400.0 / SimulatedDevice().spec.memory_bandwidth_bps
    )
    host_s = N_STEPS * HOST_WORK_S

    table = Table(["quantity", "value"], title="ablation - async submission (paper 2.2.2)")
    table.add_row(["steps", N_STEPS])
    table.add_row(["device kernel time", format_seconds(kernel_s)])
    table.add_row(["host-side work", format_seconds(host_s)])
    table.add_row(["modeled total, synchronous", format_seconds(t_sync)])
    table.add_row(["modeled total, nowait + taskwait", format_seconds(t_async)])
    table.add_row(["overlap saving", f"{1 - t_async / t_sync:.1%}"])
    publish("ablation_async", table.render())

    assert t_async < t_sync
    # With overlap, the total approaches max(kernel, host) per step rather
    # than their sum.
    assert t_async < t_sync - 0.8 * min(kernel_s, host_s)
