"""Ablation: hybrid data residency vs naive per-kernel transfers.

Paper §3.2.2: managing data movement at the pipeline level (keeping data
resident between GPU kernels) gave ~40% over transferring around every
kernel.  Both policies run live here; modeled transfer time is compared.
"""

import numpy as np

from repro.accel import SimulatedDevice
from repro.core import Data, ImplementationType, MovementPolicy, Pipeline, fake_hexagon_focalplane
from repro.healpix import npix as healpix_npix
from repro.ompshim import OmpTargetRuntime
from repro.ops import (
    BuildNoiseWeighted,
    DefaultNoiseModel,
    NoiseWeight,
    PixelsHealpix,
    PointingDetector,
    ScanMap,
    SimNoise,
    SimSatellite,
    StokesWeights,
    create_fake_sky,
)

NSIDE = 32


def make_data():
    fp = fake_hexagon_focalplane(n_pixels=3, sample_rate=20.0)
    d = Data()
    SimSatellite(fp, n_observations=2, n_samples=4096, scan_samples=900, gap_samples=30).apply(d)
    DefaultNoiseModel().apply(d)
    d["sky_map"] = create_fake_sky(NSIDE, seed=4)
    SimNoise().apply(d)
    return d


def ops():
    return [
        PointingDetector(),
        PixelsHealpix(nside=NSIDE, nest=True),
        StokesWeights(mode="IQU"),
        ScanMap(),
        NoiseWeight(),
        BuildNoiseWeighted(n_pix=healpix_npix(NSIDE), nnz=3, use_det_weights=False),
    ]


def run_policy(policy):
    rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 30))
    d = make_data()
    Pipeline(
        ops(), implementation=ImplementationType.OMP_TARGET, accel=rt, policy=policy
    ).apply(d)
    clock = rt.device.clock
    movement = sum(
        clock.region_time(r)
        for r in ("accel_data_update_device", "accel_data_update_host", "accel_data_reset")
    )
    return d["zmap"], movement, clock.now


def test_ablation_data_movement(benchmark, publish):
    zmap_h, move_hybrid, total_hybrid = benchmark.pedantic(
        lambda: run_policy(MovementPolicy.HYBRID), rounds=1, iterations=1
    )
    zmap_n, move_naive, total_naive = run_policy(MovementPolicy.NAIVE)

    np.testing.assert_allclose(zmap_h, zmap_n, atol=1e-12)
    assert move_hybrid < move_naive
    saving = 1.0 - total_hybrid / total_naive

    lines = [
        "ablation: pipeline data residency (paper 3.2.2: ~40% speedup)",
        f"  modeled transfer time, hybrid : {move_hybrid * 1e3:9.3f} ms",
        f"  modeled transfer time, naive  : {move_naive * 1e3:9.3f} ms",
        f"  modeled total, hybrid         : {total_hybrid * 1e3:9.3f} ms",
        f"  modeled total, naive          : {total_naive * 1e3:9.3f} ms",
        f"  end-to-end saving             : {saving:.1%}",
    ]
    publish("ablation_data_movement", "\n".join(lines))
    # Shape check: residency wins by a wide margin on transfers.
    assert move_naive / move_hybrid > 1.5
