"""Ablation: the hand-written device memory pool vs direct allocation.

Paper §3.1.2: the OMP port allocates through "a manually implemented
memory pool"; §4.1 notes JAX's pool "leads to code simplifications and
significant performance benefits out of the box" -- the OMP team ended up
writing their own.  This bench measures what the pool buys: allocation
churn served from the free list instead of fresh device allocations.
"""

import numpy as np

from repro.accel import MemoryPool

N_CYCLES = 2000
SIZES = [8 * 1024, 64 * 1024, 8 * 1024, 256 * 1024]


def churn_with_pool():
    """Steady-state alloc/free cycles against one persistent pool."""
    pool = MemoryPool(64 * 1024 * 1024)
    for _ in range(N_CYCLES):
        offs = [pool.allocate(s) for s in SIZES]
        for off in offs:
            pool.free(off)
    return pool.stats()


def churn_without_pool():
    """The same cycles with a fresh 'device allocation' every time
    (modeled by real buffer zeroing, the dominant cost of cudaMalloc'd
    first-touch pages)."""
    total = 0
    for _ in range(N_CYCLES):
        bufs = [np.zeros(s, dtype=np.uint8) for s in SIZES]
        total += sum(b.nbytes for b in bufs)
    return total


def test_pool_reuse(benchmark, publish):
    stats = benchmark(churn_with_pool)
    # The pool reached steady state: high-water stays at one cycle's worth.
    one_cycle = sum(((s + 255) // 256) * 256 for s in SIZES)
    assert stats.high_water == one_cycle
    assert stats.n_allocs == N_CYCLES * len(SIZES)
    assert stats.allocated == 0

    lines = [
        "ablation: device memory pool (paper 3.1.2) vs direct allocation",
        f"  alloc/free cycles        : {N_CYCLES} x {len(SIZES)} buffers",
        f"  pool high-water          : {stats.high_water} bytes (one cycle)",
        "  without a pool the same churn re-allocates device memory each",
        "  cycle (see test_no_pool_churn's timing for the contrast).",
    ]
    publish("ablation_pool", "\n".join(lines))


def test_no_pool_churn(benchmark):
    total = benchmark(churn_without_pool)
    assert total > 0
