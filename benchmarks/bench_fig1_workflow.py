"""Fig 1 reproduction: the JAX workflow, from tracing to execution.

The paper's Figure 1 diagrams the pipeline: Python function -> tracing ->
"High Level Operations" (HLO) -> XLA compilation -> hardware execution.
This bench drives a real TOAST kernel body through each stage of the shim
and reports the artifact produced at every step.
"""

import numpy as np

from repro.accel import SimulatedDevice
from repro.jaxshim import attach_device, config, detach_device, jit, make_graph
from repro.jaxshim.compile import estimate_compile_time
from repro.kernels.jax.qarray import position_angle
from repro.utils.table import Table, format_seconds


def kernel_body(q, hwp):
    """The IQU position-angle math (the stokes_weights_IQU core)."""
    from repro.jaxshim import jnp

    angle = position_angle(q) + 2.0 * hwp
    return jnp.stack([jnp.cos(2.0 * angle), jnp.sin(2.0 * angle)], axis=1)


def test_fig1_workflow_stages(benchmark, publish):
    n = 4096
    rng = np.random.default_rng(17)
    q = rng.normal(size=(n, 4))
    hwp = rng.uniform(0, 2 * np.pi, n)

    with config.temporarily(enable_x64=True, preallocate_memory=False):
        # Stage 1-2: tracing -> the "HLO" graph.
        graph = make_graph(kernel_body)(q, hwp)

        # Stage 3: compilation (fusion into executable kernels) + execution
        # on the (simulated) hardware.
        dev = SimulatedDevice()
        attach_device(dev)
        try:
            jf = jit(kernel_body)
            out = benchmark(lambda: jf(q, hwp))
            exe = jf.compiled_for(q, hwp)
            modeled = exe.modeled_execution_time(dev)
        finally:
            detach_device()

    table = Table(
        ["stage (paper Fig 1)", "artifact here"],
        title="Fig 1 - JAX workflow, from tracing to hardware execution",
    )
    table.add_row(["Python function", "kernel_body (stokes IQU core)"])
    table.add_row(["tracing", f"abstract inputs float64[{n},4], float64[{n}]"])
    table.add_row(["'HLO' graph", f"{graph.n_eqns} primitive operations"])
    table.add_row(["XLA compile (modeled)", format_seconds(estimate_compile_time(graph.n_eqns))])
    table.add_row(["fused kernels", exe.n_kernels])
    table.add_row(["execution (modeled, A100)", format_seconds(modeled)])
    table.add_row(["cache reuse", f"{jf.n_traces} trace(s) across {exe.n_calls} call(s)"])
    publish("fig1_workflow", table.render())

    assert graph.n_eqns > 10
    assert exe.n_kernels < graph.n_eqns
    assert jf.n_traces == 1
    assert out.shape == (n, 2)
