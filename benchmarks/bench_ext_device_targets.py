"""Extension: the cross-target study the paper proposes (§5).

"In the longer term, it would be interesting to do a systematic study
quantifying the performance on various targets."  This bench runs the
live small-size workflow against device presets spanning three vendors/
generations and compares the roofline-modeled device time.
"""

import numpy as np

from repro.accel import DEVICE_PRESETS, SimulatedDevice
from repro.core import ImplementationType
from repro.ompshim import OmpTargetRuntime
from repro.utils.table import Table, format_seconds
from repro.workflows.satellite import SIZES, run_satellite_benchmark


def run_on(preset: str):
    spec = DEVICE_PRESETS[preset]
    dev = SimulatedDevice(spec=spec)
    accel = OmpTargetRuntime(dev)
    result = run_satellite_benchmark(
        SIZES["tiny"], ImplementationType.OMP_TARGET, accel=accel, mapmaking=False
    )
    kernel_time = sum(
        t for r, t in result["virtual_regions"].items() if not r.startswith("accel_data")
    )
    movement = sum(
        t for r, t in result["virtual_regions"].items() if r.startswith("accel_data")
    )
    # At toy scale the fixed launch overhead dominates; subtract it to
    # expose the roofline component the target comparison is about.
    roofline = kernel_time - result["kernels_launched"] * spec.kernel_launch_overhead_s
    return result, roofline, movement


def test_ext_device_target_sweep(benchmark, publish):
    results = benchmark.pedantic(
        lambda: {name: run_on(name) for name in DEVICE_PRESETS},
        rounds=1,
        iterations=1,
    )

    table = Table(
        ["device", "roofline kernel time", "modeled movement", "vs A100-40GB"],
        title="extension - the same workload across device targets (tiny, live)",
    )
    base_kernel = results["A100-40GB"][1]
    zmaps = []
    for name, (res, kernel_time, movement) in results.items():
        table.add_row(
            [
                name,
                format_seconds(kernel_time),
                format_seconds(movement),
                base_kernel / kernel_time,
            ]
        )
        zmaps.append(res["zmap"])
    publish("ext_device_targets", table.render())

    # Portability: identical physics on every target.
    for z in zmaps[1:]:
        np.testing.assert_allclose(z, zmaps[0], atol=1e-12)

    # Roofline ordering: newer/wider parts are faster on this
    # bandwidth-bound workload; V100 is slower than A100.
    k = {name: results[name][1] for name in results}
    assert k["H100-80GB"] < k["A100-40GB"] < k["V100-16GB"]
    assert k["MI250X-GCD"] < k["A100-40GB"]
    # Faster host links also shrink movement time.
    m = {name: results[name][2] for name in results}
    assert m["H100-80GB"] < m["V100-16GB"]
