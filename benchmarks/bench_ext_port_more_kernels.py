"""Extension: "port more kernels" -- lifting the Amdahl ceiling (§5).

The paper's overall speedup is bounded near 3x by the >30 unported
kernels.  This reproduction ports two of them (cov_accum_diag_hits /
cov_accum_diag_invnpp); this bench quantifies the effect: the ideal-GPU
ceiling rises as kernels move from the unported to the ported column.
"""

import numpy as np

from repro.accel import SimulatedDevice
from repro.core import Data, ImplementationType, fake_hexagon_focalplane, use_implementation
from repro.healpix import npix as healpix_npix
from repro.ompshim import OmpTargetRuntime
from repro.ops import (
    CovarianceAndHits,
    DefaultNoiseModel,
    PixelsHealpix,
    PointingDetector,
    SimSatellite,
    StokesWeights,
)
from repro.perfmodel.calibration import CPU_MODEL
from repro.utils.table import Table, format_seconds


def amdahl_ceiling(extra_ported_seconds: float) -> float:
    """Ideal-GPU ceiling at the 16-process reference configuration when
    ``extra_ported_seconds`` move from the unported to the ported column."""
    serial = CPU_MODEL["serial_seconds"] / 16
    unported = CPU_MODEL["unported_seconds"] - extra_ported_seconds
    ported = CPU_MODEL["ported_seconds"] + extra_ported_seconds
    total = serial + unported + ported
    return total / (serial + unported)


def test_ext_port_more_kernels_model(benchmark, publish):
    # Model: the cov_accum pair is a modest slice of the unported budget.
    cov_accum_cpu_seconds = 12.0

    def ceilings():
        return amdahl_ceiling(0.0), amdahl_ceiling(cov_accum_cpu_seconds)

    before, after = benchmark(ceilings)
    table = Table(
        ["configuration", "ideal-GPU ceiling"],
        title="extension - porting more kernels lifts the Amdahl ceiling",
    )
    table.add_row(["paper's 10 ported kernels", before])
    table.add_row(["+ cov_accum_diag_hits / _invnpp", after])
    table.add_row(["+ all remaining unported work", amdahl_ceiling(CPU_MODEL["unported_seconds"])])
    publish("ext_port_more_kernels", table.render())

    assert after > before
    assert abs(before - 3.0) < 0.1  # the paper's "about 3x"


def test_ext_cov_accum_runs_on_device(benchmark):
    """Live: the newly ported kernels run through the accelerator path."""

    def run():
        fp = fake_hexagon_focalplane(n_pixels=2, sample_rate=10.0)
        d = Data()
        SimSatellite(fp, n_observations=1, n_samples=2000, flag_fraction=0.0).apply(d)
        DefaultNoiseModel().apply(d)
        PointingDetector().apply(d)
        PixelsHealpix(nside=16, nest=True).apply(d)
        StokesWeights(mode="IQU").apply(d)

        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 28))
        op = CovarianceAndHits(n_pix=healpix_npix(16), nnz=3)
        with use_implementation(ImplementationType.OMP_TARGET):
            op.ensure_outputs(d)
            arrays = [d.obs[0].detdata["pixels"], d.obs[0].detdata["weights"]]
            rt.target_enter_data(to=arrays)
            op.exec(d, use_accel=True, accel=rt)
            rt.target_exit_data(release=arrays)
        return d, rt

    d, rt = benchmark.pedantic(run, rounds=1, iterations=1)
    assert d["hits"].sum() > 0
    assert rt.device.clock.region_time("cov_accum_diag_hits") > 0
    assert rt.device.clock.region_time("cov_accum_diag_invnpp") > 0
