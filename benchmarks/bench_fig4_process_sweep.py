"""Fig 4 reproduction: runtime vs number of processes (medium, one node).

The modeled sweep regenerates the figure; the benchmarked work is a live
scaled pipeline at the reference 16-process-equivalent configuration, run
once per backend through the simulated device so the relative ordering is
also observed on real code paths.
"""

import pytest

from repro.accel import SimulatedDevice
from repro.core import ImplementationType
from repro.ompshim import OmpTargetRuntime
from repro.perfmodel import Backend
from repro.workflows.report import fig4_process_sweep
from repro.workflows.satellite import SIZES, run_satellite_benchmark


def test_fig4_process_sweep_model(benchmark, publish):
    table, sweep = benchmark(fig4_process_sweep)
    publish("fig4_process_sweep", table)

    pts = {(pt.backend, pt.n_procs): pt for pt in sweep}

    # CPU falls with process count (serial work parallelized, 4.1).
    cpu = [pts[(Backend.CPU, p)].runtime_s for p in (1, 2, 4, 8, 16, 32, 64)]
    assert all(a > b for a, b in zip(cpu, cpu[1:]))

    # JAX: OOM at 1 and 64; peak 2.4x at 8 processes; decline beyond.
    assert pts[(Backend.JAX, 1)].runtime_s is None
    assert pts[(Backend.JAX, 64)].runtime_s is None
    assert pts[(Backend.JAX, 8)].speedup == pytest.approx(2.4)
    assert pts[(Backend.JAX, 16)].speedup == pytest.approx(2.3)
    assert pts[(Backend.JAX, 32)].speedup == pytest.approx(2.0)

    # OMP: consistently faster than JAX; fits at 1 process; OOM at 64.
    assert pts[(Backend.OMP, 1)].runtime_s is not None
    assert pts[(Backend.OMP, 64)].runtime_s is None
    assert pts[(Backend.OMP, 8)].speedup == pytest.approx(2.9)
    for p in (2, 4, 8, 16, 32):
        assert pts[(Backend.OMP, p)].runtime_s < pts[(Backend.JAX, p)].runtime_s


@pytest.mark.parametrize(
    "impl,backend",
    [
        (ImplementationType.NUMPY, Backend.CPU),
        (ImplementationType.JAX, Backend.JAX),
        (ImplementationType.OMP_TARGET, Backend.OMP),
    ],
)
def test_fig4_live_scaled_run(benchmark, impl, backend):
    """Live scaled pipeline per backend: exercises the real code paths."""
    size = SIZES["tiny"]

    def run():
        accel = None
        if impl is not ImplementationType.NUMPY:
            accel = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 28))
        return run_satellite_benchmark(size, impl, accel=accel, mapmaking=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["zmap"] is not None


def test_fig4_live_sharing_mechanism(benchmark, publish):
    """Live: the GPU-sharing mechanics behind the sweep's shape.

    The same tiny pipeline runs with the device-sharing model configured
    for each process-per-GPU ratio; per-kernel virtual time grows with
    sharers without MPS and stays nearly flat with it -- the mechanism the
    macro model's anchors encode.
    """
    from repro.accel import GpuSharingModel

    def run_sharing(ppg, mps):
        accel = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 28))
        accel.device.sharing = GpuSharingModel(procs_per_gpu=ppg, mps_enabled=mps)
        res = run_satellite_benchmark(
            SIZES["tiny"], ImplementationType.OMP_TARGET, accel=accel, mapmaking=False
        )
        kernel_time = sum(
            t
            for r, t in res["virtual_regions"].items()
            if not r.startswith("accel_data") and r != "device_synchronize"
        )
        # Launch overhead swamps the tiny grids; the sharing effect lives
        # in the roofline portion.
        overhead = res["kernels_launched"] * accel.device.spec.kernel_launch_overhead_s
        return kernel_time - overhead

    def sweep():
        return {
            (ppg, mps): run_sharing(ppg, mps)
            for ppg in (1, 2, 4, 8)
            for mps in (True, False)
        }

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["live sharing mechanics (tiny pipeline, per-process kernel time):"]
    for ppg in (1, 2, 4, 8):
        lines.append(
            f"  {ppg} proc/GPU:  MPS {times[(ppg, True)] * 1e6:9.2f} us   "
            f"no-MPS {times[(ppg, False)] * 1e6:9.2f} us"
        )
    publish("fig4_live_sharing", "\n".join(lines))

    # Without MPS kernel time scales with sharers; with MPS it stays flat.
    assert times[(8, False)] > 4 * times[(1, False)]
    assert times[(8, True)] < 2 * times[(1, True)]
