"""Shared helpers for the figure-reproduction benchmarks.

Every bench both (a) times a real piece of work through pytest-benchmark
and (b) regenerates the corresponding paper figure as an ASCII table,
printed and archived under ``benchmarks/reports/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def publish(report_dir):
    """Print a figure table and archive it under benchmarks/reports/."""

    def _publish(name: str, text: str) -> None:
        print()
        print(text)
        (report_dir / f"{name}.txt").write_text(text + "\n")

    return _publish
