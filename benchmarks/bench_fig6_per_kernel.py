"""Fig 6 reproduction: total runtime per kernel (medium, 16 processes).

The model prints the per-kernel table with the paper's speedups; the live
micro-benchmarks time each ported kernel in each implementation on a real
workload, so relative kernel weights are also observed.
"""

import numpy as np
import pytest

from repro.core.dispatch import ImplementationType, kernel_registry
from repro.kernels import BENCHMARK_KERNELS
from repro.math import qa
from repro.perfmodel import Backend
from repro.workflows.report import fig6_per_kernel

N_DET = 8
N_SAMP = 8192
NSIDE = 64
STEP = 256
N_AMP_DET = (N_SAMP + STEP - 1) // STEP

RNG = np.random.default_rng(42)
STARTS = np.arange(0, N_SAMP, 1024, dtype=np.int64)
STOPS = np.minimum(STARTS + 1000, N_SAMP)


def test_fig6_model(benchmark, publish):
    table, times = benchmark(fig6_per_kernel)
    publish("fig6_per_kernel", table)

    cpu, jax, omp = times["cpu"], times["jax"], times["omp"]
    for name in BENCHMARK_KERNELS:
        assert jax[name] < cpu[name]
        assert omp[name] < cpu[name]
    # The two stand-out kernels of 4.2.
    assert cpu["template_offset_project_signal"] / jax[
        "template_offset_project_signal"
    ] == pytest.approx(45.0)
    assert cpu["pixels_healpix"] / omp["pixels_healpix"] == pytest.approx(41.0)
    # JAX wins exactly one kernel (the XLA linear-algebra rewrite).
    jax_wins = [n for n in BENCHMARK_KERNELS if jax[n] < omp[n]]
    assert jax_wins == ["template_offset_project_signal"]


def _kernel_args(name):
    quats = qa.from_angles(
        RNG.uniform(0.1, np.pi - 0.1, (N_DET, N_SAMP)),
        RNG.uniform(-np.pi, np.pi, (N_DET, N_SAMP)),
        RNG.uniform(-np.pi, np.pi, (N_DET, N_SAMP)),
    )
    npix = 12 * NSIDE * NSIDE
    common = dict(starts=STARTS, stops=STOPS)
    if name == "pointing_detector":
        return dict(
            fp_quats=qa.from_angles(
                RNG.uniform(0, 0.05, N_DET), RNG.uniform(0, 1, N_DET), np.zeros(N_DET)
            ),
            boresight=quats[0],
            quats_out=np.zeros((N_DET, N_SAMP, 4)),
            **common,
        )
    if name == "stokes_weights_IQU":
        return dict(
            quats=quats,
            weights_out=np.zeros((N_DET, N_SAMP, 3)),
            hwp_angle=RNG.uniform(0, 2 * np.pi, N_SAMP),
            epsilon=np.zeros(N_DET),
            cal=1.0,
            **common,
        )
    if name == "pixels_healpix":
        return dict(
            quats=quats,
            pixels_out=np.zeros((N_DET, N_SAMP), dtype=np.int64),
            nside=NSIDE,
            nest=True,
            **common,
        )
    if name == "scan_map":
        return dict(
            map_data=RNG.normal(size=(npix, 3)),
            pixels=RNG.integers(0, npix, (N_DET, N_SAMP)),
            weights=RNG.normal(size=(N_DET, N_SAMP, 3)),
            tod=np.zeros((N_DET, N_SAMP)),
            **common,
        )
    if name == "noise_weight":
        return dict(
            tod=RNG.normal(size=(N_DET, N_SAMP)),
            det_weights=RNG.uniform(0.5, 2.0, N_DET),
            **common,
        )
    if name == "build_noise_weighted":
        return dict(
            zmap=np.zeros((npix, 3)),
            pixels=RNG.integers(0, npix, (N_DET, N_SAMP)),
            weights=RNG.normal(size=(N_DET, N_SAMP, 3)),
            tod=RNG.normal(size=(N_DET, N_SAMP)),
            det_scale=np.ones(N_DET),
            **common,
        )
    if name == "template_offset_add_to_signal":
        return dict(
            step_length=STEP,
            amplitudes=RNG.normal(size=N_DET * N_AMP_DET),
            amp_offsets=np.arange(N_DET, dtype=np.int64) * N_AMP_DET,
            tod=np.zeros((N_DET, N_SAMP)),
            **common,
        )
    if name == "template_offset_project_signal":
        return dict(
            step_length=STEP,
            tod=RNG.normal(size=(N_DET, N_SAMP)),
            amplitudes=np.zeros(N_DET * N_AMP_DET),
            amp_offsets=np.arange(N_DET, dtype=np.int64) * N_AMP_DET,
            **common,
        )
    raise KeyError(name)


@pytest.mark.parametrize("name", BENCHMARK_KERNELS)
@pytest.mark.parametrize("impl", [ImplementationType.NUMPY, ImplementationType.JAX])
def test_fig6_live_kernel_micro(benchmark, name, impl):
    """Wall-clock micro-benchmark of each live kernel implementation."""
    fn = kernel_registry.get(name, impl, allow_fallback=False)
    args = _kernel_args(name)
    # Warm the jit cache outside the timed region (the paper's runtimes
    # include compile time once per shape; here we time steady state).
    fn(**args)
    benchmark(lambda: fn(**args))
