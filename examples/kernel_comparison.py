#!/usr/bin/env python
"""Compare the four implementations of every ported kernel.

For each kernel: check that all implementations agree bit-for-bit with the
pure-Python oracle, then wall-clock the NumPy / JAX / OMP versions on a
live workload (the paper's per-kernel study, Fig 6, at reproduction
scale).

Usage::

    python examples/kernel_comparison.py
"""

import time

import numpy as np

from repro.core.dispatch import ImplementationType, kernel_registry
from repro.kernels import KERNEL_NAMES
from repro.math import qa
from repro.utils.table import Table, format_seconds

N_DET = 4
N_SAMP = 4096
NSIDE = 32
STEP = 128
N_AMP_DET = (N_SAMP + STEP - 1) // STEP
STARTS = np.arange(0, N_SAMP, 512, dtype=np.int64)
STOPS = np.minimum(STARTS + 480, N_SAMP)


def kernel_args(name: str):
    rng = np.random.default_rng(hash(name) & 0xFFFF)
    quats = qa.from_angles(
        rng.uniform(0.1, np.pi - 0.1, (N_DET, N_SAMP)),
        rng.uniform(-np.pi, np.pi, (N_DET, N_SAMP)),
        rng.uniform(-np.pi, np.pi, (N_DET, N_SAMP)),
    )
    npix = 12 * NSIDE * NSIDE
    base = dict(starts=STARTS, stops=STOPS)
    table = {
        "pointing_detector": dict(
            fp_quats=qa.from_angles(
                rng.uniform(0, 0.05, N_DET), rng.uniform(0, 1, N_DET), np.zeros(N_DET)
            ),
            boresight=quats[0],
            quats_out=np.zeros((N_DET, N_SAMP, 4)),
        ),
        "stokes_weights_I": dict(weights_out=np.zeros((N_DET, N_SAMP)), cal=1.0),
        "stokes_weights_IQU": dict(
            quats=quats,
            weights_out=np.zeros((N_DET, N_SAMP, 3)),
            hwp_angle=rng.uniform(0, 2 * np.pi, N_SAMP),
            epsilon=np.zeros(N_DET),
            cal=1.0,
        ),
        "pixels_healpix": dict(
            quats=quats,
            pixels_out=np.zeros((N_DET, N_SAMP), dtype=np.int64),
            nside=NSIDE,
            nest=True,
        ),
        "scan_map": dict(
            map_data=rng.normal(size=(npix, 3)),
            pixels=rng.integers(0, npix, (N_DET, N_SAMP)),
            weights=rng.normal(size=(N_DET, N_SAMP, 3)),
            tod=np.zeros((N_DET, N_SAMP)),
        ),
        "noise_weight": dict(
            tod=rng.normal(size=(N_DET, N_SAMP)),
            det_weights=rng.uniform(0.5, 2.0, N_DET),
        ),
        "build_noise_weighted": dict(
            zmap=np.zeros((npix, 3)),
            pixels=rng.integers(0, npix, (N_DET, N_SAMP)),
            weights=rng.normal(size=(N_DET, N_SAMP, 3)),
            tod=rng.normal(size=(N_DET, N_SAMP)),
            det_scale=np.ones(N_DET),
        ),
        "template_offset_add_to_signal": dict(
            step_length=STEP,
            amplitudes=rng.normal(size=N_DET * N_AMP_DET),
            amp_offsets=np.arange(N_DET, dtype=np.int64) * N_AMP_DET,
            tod=np.zeros((N_DET, N_SAMP)),
        ),
        "template_offset_project_signal": dict(
            step_length=STEP,
            tod=rng.normal(size=(N_DET, N_SAMP)),
            amplitudes=np.zeros(N_DET * N_AMP_DET),
            amp_offsets=np.arange(N_DET, dtype=np.int64) * N_AMP_DET,
        ),
        "template_offset_apply_diag_precond": dict(
            offset_var=rng.uniform(0.5, 2.0, N_DET * N_AMP_DET),
            amp_in=rng.normal(size=N_DET * N_AMP_DET),
            amp_out=np.zeros(N_DET * N_AMP_DET),
        ),
    }
    args = table[name]
    if name != "template_offset_apply_diag_precond":
        args.update(base)
    return args


def time_impl(fn, args, repeats: int = 5) -> float:
    fn(**args)  # warm any jit cache
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(**args)
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> None:
    impls = [
        ImplementationType.PYTHON,
        ImplementationType.NUMPY,
        ImplementationType.JAX,
        ImplementationType.OMP_TARGET,
    ]
    table = Table(
        ["kernel", "agree", "numpy", "jax", "omp (host)"],
        title=f"kernel comparison ({N_DET} det x {N_SAMP} samples, live wall time)",
    )
    for name in KERNEL_NAMES:
        outputs = {}
        for impl in impls:
            fn = kernel_registry.get(name, impl, allow_fallback=False)
            args = kernel_args(name)
            fn(**args)
            outputs[impl] = {
                k: np.array(v)
                for k, v in args.items()
                if isinstance(v, np.ndarray)
            }
        ref = outputs[ImplementationType.PYTHON]
        agree = all(
            np.allclose(outputs[impl][k], ref[k], atol=1e-12)
            for impl in impls[1:]
            for k in ref
        )
        timings = {
            impl: time_impl(
                kernel_registry.get(name, impl, allow_fallback=False),
                kernel_args(name),
            )
            for impl in impls[1:]
        }
        table.add_row(
            [
                name,
                "yes" if agree else "NO",
                format_seconds(timings[ImplementationType.NUMPY]),
                format_seconds(timings[ImplementationType.JAX]),
                format_seconds(timings[ImplementationType.OMP_TARGET]),
            ]
        )
    table.print()
    print("note: wall times compare *host* executions of the programming")
    print("models; the paper's GPU speedups are reproduced by the calibrated")
    print("model (see benchmarks/bench_fig6_per_kernel.py).")


if __name__ == "__main__":
    main()
