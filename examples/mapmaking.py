#!/usr/bin/env python
"""Destriping map-making in detail.

Simulates sky signal plus strong correlated (1/f) noise, runs the
template-offset solver, and compares three maps against the input sky:
the naive binned map, the destriped map, and the noise-free ideal.

Usage::

    python examples/mapmaking.py
"""

import numpy as np

from repro.core import Data, fake_hexagon_focalplane
from repro.healpix import npix as healpix_npix
from repro.ops import (
    BinMap,
    BuildNoiseWeighted,
    CovarianceAndHits,
    DefaultNoiseModel,
    MapMaker,
    PixelsHealpix,
    PointingDetector,
    ScanMap,
    SimNoise,
    SimSatellite,
    StokesWeights,
    create_fake_sky,
)
from repro.utils.table import Table

NSIDE = 16
N_PIX = healpix_npix(NSIDE)


def build_data(fknee: float) -> Data:
    fp = fake_hexagon_focalplane(
        n_pixels=4, sample_rate=20.0, net=0.3, fknee=fknee
    )
    data = Data()
    SimSatellite(
        fp,
        n_observations=3,
        n_samples=6000,
        scan_samples=1400,
        gap_samples=30,
        flag_fraction=0.0,
    ).apply(data)
    DefaultNoiseModel().apply(data)
    data["sky_map"] = create_fake_sky(NSIDE, seed=21)
    PointingDetector().apply(data)
    PixelsHealpix(nside=NSIDE, nest=True).apply(data)
    StokesWeights(mode="IQU").apply(data)
    ScanMap().apply(data)
    SimNoise().apply(data)
    return data


def binned_map(data: Data, det_key: str, zkey: str, mkey: str) -> np.ndarray:
    BuildNoiseWeighted(zmap_key=zkey, det_data=det_key, n_pix=N_PIX, nnz=3).apply(data)
    if "inv_cov" not in data:
        CovarianceAndHits(n_pix=N_PIX, nnz=3).apply(data)
    BinMap(zmap_key=zkey, map_key=mkey).apply(data)
    return data[mkey]


def main() -> None:
    data = build_data(fknee=0.5)  # strong 1/f: baselines dominate

    naive = binned_map(data, "signal", "z_naive", "map_naive")

    mapper = MapMaker(n_pix=N_PIX, nnz=3, step_length=150, max_iterations=40)
    mapper.apply(data)
    destriped = data["destriped_map"]

    sky = data["sky_map"]
    hits = data["hits"]
    good = hits > 30

    def rms_residual(m: np.ndarray) -> float:
        sel = good & np.any(m != 0, axis=1)
        return float(np.sqrt(np.mean((m[sel, 0] - sky[sel, 0]) ** 2)))

    table = Table(["map", "I residual RMS vs input sky"], title="destriping demo")
    table.add_row(["naive binned (1/f untouched)", rms_residual(naive)])
    table.add_row(["destriped (offset template)", rms_residual(destriped)])
    table.print()

    print(f"CG iterations: {mapper.n_iterations_run}, final relative residual: "
          f"{mapper.final_residual:.2e}")
    improvement = rms_residual(naive) / rms_residual(destriped)
    print(f"destriping improves the I-map residual by {improvement:.1f}x")


if __name__ == "__main__":
    main()
