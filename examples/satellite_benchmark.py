#!/usr/bin/env python
"""The satellite benchmark with selectable size and backend.

Runs the live (scaled) workflow with the chosen kernel implementation --
optionally through the simulated accelerator -- and prints both the live
accounting and the paper-scale model numbers.

Usage::

    python examples/satellite_benchmark.py [size] [backend] [--naive]

    size:    tiny | small | medium_scaled          (default: small)
    backend: numpy | jax | omp_target | python     (default: omp_target)
    --naive: use per-kernel transfers instead of pipeline data residency
"""

import sys

from repro.accel import SimulatedDevice
from repro.core import ImplementationType, MovementPolicy
from repro.ompshim import OmpTargetRuntime
from repro.perfmodel import Backend, full_benchmark_runtimes
from repro.utils.table import Table, format_seconds
from repro.workflows.satellite import SIZES, run_satellite_benchmark

BACKENDS = {
    "python": ImplementationType.PYTHON,
    "numpy": ImplementationType.NUMPY,
    "jax": ImplementationType.JAX,
    "omp_target": ImplementationType.OMP_TARGET,
}


def main(argv) -> None:
    size_name = argv[1] if len(argv) > 1 else "small"
    backend_name = argv[2] if len(argv) > 2 else "omp_target"
    policy = MovementPolicy.NAIVE if "--naive" in argv else MovementPolicy.HYBRID

    if size_name not in SIZES or size_name.startswith("paper"):
        raise SystemExit(f"size must be one of tiny/small/medium_scaled, got {size_name}")
    if backend_name not in BACKENDS:
        raise SystemExit(f"backend must be one of {sorted(BACKENDS)}")

    size = SIZES[size_name]
    impl = BACKENDS[backend_name]
    accel = None
    if impl in (ImplementationType.JAX, ImplementationType.OMP_TARGET):
        accel = OmpTargetRuntime(SimulatedDevice())

    print(f"live run: size={size.name} backend={backend_name} policy={policy.value}")
    result = run_satellite_benchmark(size, impl, accel=accel, policy=policy)

    table = Table(["measure", "value"], title="live run")
    table.add_row(["wall time (host)", format_seconds(result["wall_seconds"])])
    table.add_row(["map-maker iterations", result["mapmaker_iterations"]])
    if accel is not None:
        table.add_row(["virtual device time", format_seconds(result["virtual_seconds"])])
        table.add_row(["kernel launches", result["kernels_launched"]])
    table.print()

    if accel is not None:
        regions = Table(["region", "virtual time"], title="device accounting")
        for name, seconds in sorted(
            result["virtual_regions"].items(), key=lambda kv: -kv[1]
        ):
            regions.add_row([name, format_seconds(seconds)])
        regions.print()

    model = Table(
        ["implementation", "modeled runtime", "speedup"],
        title="paper-scale model (large problem, 8 Perlmutter nodes)",
    )
    times = full_benchmark_runtimes()
    cpu = times[Backend.CPU]
    for b in (Backend.CPU, Backend.JAX, Backend.OMP):
        model.add_row([b.value, format_seconds(times[b]), cpu / times[b]])
    model.print()


if __name__ == "__main__":
    main(sys.argv)
