#!/usr/bin/env python
"""A tour of the two GPU programming models the paper compares.

Walks through the constraints and behaviours discussed in the paper using
the shims directly: JAX-style purity/static shapes/jit caching/fusion on
one side, OpenMP-style explicit data mapping and collapsed loops on the
other.

Usage::

    python examples/gpu_porting_tour.py
"""

import numpy as np

from repro.accel import SimulatedDevice
from repro.jaxshim import (
    ConcretizationError,
    ShapeError,
    TracerError,
    attach_device,
    config,
    detach_device,
    jit,
    jnp,
    vmap,
)
from repro.ompshim import NotPresentError, OmpTargetRuntime


def jax_side() -> None:
    print("=" * 70)
    print("JAX side (paper 2.3): purity, static shapes, jit, vmap, fusion")
    print("=" * 70)
    config.update("enable_x64", True)

    # 1. Purity: in-place mutation is rejected with a helpful message.
    @jit
    def impure(x):
        x[0] = 1.0
        return x

    try:
        impure(np.zeros(4))
    except TracerError as e:
        print(f"\n[purity] {e}")

    # 2. Control flow on traced values is rejected.
    @jit
    def branchy(x):
        return x if x[0] > 0 else -x

    try:
        branchy(np.ones(4))
    except ConcretizationError as e:
        print(f"\n[control flow] {type(e).__name__}: traced values cannot drive `if`")

    # 3. Dynamic shapes are rejected (the reason intervals are padded).
    @jit
    def dynamic(x):
        return x[x > 0]

    try:
        dynamic(np.arange(4.0))
    except ShapeError:
        print("\n[static shapes] boolean masking rejected -> pad to max interval size")

    # 4. The functional alternative, plus jit caching.
    @jit
    def functional(x, idx, v):
        return x.at[idx].add(v)

    out = functional(np.zeros(5), np.array([1, 1, 4]), np.ones(3))
    print(f"\n[functional update] x.at[idx].add(v) -> {out}")
    functional(np.zeros(5), np.array([0, 2, 3]), np.ones(3))
    print(f"[jit cache] traces after two same-shape calls: {functional.n_traces}")
    functional(np.zeros(9), np.array([0, 2, 3]), np.ones(3))
    print(f"[jit cache] after a new shape: {functional.n_traces}")

    # 5. vmap replaces the detector loop.
    def per_detector(row, weights):
        return jnp.sum(row * weights)

    rows = np.arange(12.0).reshape(3, 4)
    w = np.ones(4)
    print(f"\n[vmap] detector loop -> {vmap(per_detector, in_axes=(0, None))(rows, w)}")

    # 6. Fusion: a chain of elementwise ops becomes one kernel launch.
    @jit
    def chain(x):
        return jnp.sum(jnp.sqrt(x * x + 1.0) - jnp.cos(x) * 0.5)

    dev = SimulatedDevice()
    with config.temporarily(preallocate_memory=False):
        attach_device(dev)
        chain(np.linspace(0, 1, 1000))
        exe = chain.compiled_for(np.linspace(0, 1, 1000))
        print(
            f"\n[fusion] {exe.n_eqns} graph operations fused into "
            f"{exe.n_kernels} kernel launch(es)"
        )
        print(f"[device] modeled compile time charged: "
              f"{dev.clock.region_time('jit_compile') * 1e3:.1f} ms")
        detach_device()


def omp_side() -> None:
    print()
    print("=" * 70)
    print("OpenMP Target Offload side (paper 2.2): mapping, collapse, guards")
    print("=" * 70)

    rt = OmpTargetRuntime(SimulatedDevice())

    # 1. Dereferencing unmapped host data fails loudly (the real toolchain
    #    would segfault, 3.3).
    x = np.arange(8.0)
    try:
        rt.device_view(x)
    except NotPresentError as e:
        print(f"\n[present table] {e}")

    # 2. Explicit data regions with map clauses.
    with rt.target_data(tofrom=[x]):
        d_x = rt.device_view(x)
        d_x *= 2.0  # mutation happens on the device copy
        print(f"\n[target data] host copy during region (stale): {x[:4]}")
    print(f"[target data] host copy after region (copied back): {x[:4]}")

    # 3. The collapsed triple loop with the interval guard.
    tod = np.zeros((2, 3, 10))
    stops = np.array([10, 4, 7])
    with rt.target_data(tofrom=[tod]):
        d = rt.device_view(tod)

        def body(idet, iivl, lanes):
            valid = lanes[lanes < stops[iivl]]  # the in-loop guard
            d[idet, iivl, valid] = idet + 1

        rt.target_teams_distribute_parallel_for("demo_kernel", (2, 3, 10), body)
    print(f"\n[collapse(3)] samples touched per interval: "
          f"{(tod[0] != 0).sum(axis=1)} (guard stops at {stops.tolist()})")

    # 4. The device accounting that feeds the figures.
    print("\n[device accounting]")
    for region, seconds in sorted(rt.device.clock.regions().items()):
        print(f"  {region:<28s} {seconds * 1e6:10.2f} us (virtual)")


def main() -> None:
    jax_side()
    omp_side()


if __name__ == "__main__":
    main()
