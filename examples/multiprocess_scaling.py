#!/usr/bin/env python
"""Live multi-process scaling: the mechanism behind Fig 4's CPU curve.

The paper explains the falling CPU curve by serial per-process work being
parallelized as processes are added.  This example reproduces that
mechanism *live*: observations are distributed over real worker
processes, each simulates and reduces its share, and partial maps are
summed -- the reproduction's MPI-lite.  Wall times fall with worker count
while the summed map stays bit-identical.

Usage::

    python examples/multiprocess_scaling.py
"""

import multiprocessing as mp
import time

import numpy as np

from repro.core import Data, ImplementationType, fake_hexagon_focalplane, use_implementation
from repro.healpix import npix as healpix_npix
from repro.mpi import ToastComm
from repro.ops import (
    BuildNoiseWeighted,
    DefaultNoiseModel,
    NoiseWeight,
    PixelsHealpix,
    PointingDetector,
    ScanMap,
    SimNoise,
    SimSatellite,
    StokesWeights,
    create_fake_sky,
)
from repro.utils.table import Table, format_seconds

NSIDE = 16
N_OBS = 8
N_SAMPLES = 20000


def process_observations(obs_indices) -> np.ndarray:
    """One worker: simulate and reduce its share of the observations."""
    fp = fake_hexagon_focalplane(n_pixels=2, sample_rate=20.0)
    zmap_total = np.zeros((healpix_npix(NSIDE), 3))
    for iobs in obs_indices:
        data = Data()
        sim = SimSatellite(fp, n_observations=N_OBS, n_samples=N_SAMPLES)
        # Build only this worker's observation (deterministic by uid).
        data.comm.distribute_observations = lambda n, i=iobs: [i]  # type: ignore
        sim.apply(data)
        DefaultNoiseModel().apply(data)
        data["sky_map"] = create_fake_sky(NSIDE, seed=11)
        SimNoise().apply(data)
        with use_implementation(ImplementationType.NUMPY):
            PointingDetector().apply(data)
            PixelsHealpix(nside=NSIDE, nest=True).apply(data)
            StokesWeights(mode="IQU").apply(data)
            ScanMap().apply(data)
            NoiseWeight().apply(data)
            BuildNoiseWeighted(
                n_pix=healpix_npix(NSIDE), nnz=3, use_det_weights=False
            ).apply(data)
        zmap_total += data["zmap"]
    return zmap_total


def run_with_workers(n_workers: int) -> tuple[float, np.ndarray]:
    blocks = ToastComm.distribute_uniform(N_OBS, n_workers)
    assignments = [list(range(first, first + count)) for first, count in blocks]
    t0 = time.perf_counter()
    if n_workers == 1:
        partials = [process_observations(assignments[0])]
    else:
        # fork: workers inherit the imported library (spawn would pay a
        # fresh interpreter + import per worker, swamping this small run).
        with mp.get_context("fork").Pool(n_workers) as pool:
            partials = pool.map(process_observations, assignments)
    zmap = np.sum(partials, axis=0)  # the allreduce
    return time.perf_counter() - t0, zmap


def main() -> None:
    table = Table(
        ["workers", "wall time", "speedup", "map identical"],
        title=f"live process scaling ({N_OBS} observations)",
    )
    reference = None
    base_time = None
    for n in (1, 2, 4):
        elapsed, zmap = run_with_workers(n)
        if reference is None:
            reference, base_time = zmap, elapsed
        identical = np.allclose(zmap, reference, atol=1e-12)
        table.add_row(
            [n, format_seconds(elapsed), base_time / elapsed, "yes" if identical else "NO"]
        )
    table.print()
    print("counter-based RNG keys make the result independent of the")
    print("process layout -- the property TOAST's reproducibility relies on.")


if __name__ == "__main__":
    main()
