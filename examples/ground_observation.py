#!/usr/bin/env python
"""Ground-based observing: the framework beyond the satellite benchmark.

The paper's intro motivates TOAST with ground experiments (CMB-S4, Simons
Observatory).  This example simulates constant-elevation azimuth scans,
pushes the data through the same ported kernels as the satellite
benchmark -- on the simulated GPU -- and reports the scan structure and
sky coverage.

Usage::

    python examples/ground_observation.py
"""

import numpy as np

from repro.accel import SimulatedDevice
from repro.core import Data, ImplementationType, Pipeline, fake_hexagon_focalplane
from repro.healpix import npix as healpix_npix
from repro.ompshim import OmpTargetRuntime
from repro.ops import (
    BuildNoiseWeighted,
    DefaultNoiseModel,
    NoiseWeight,
    PixelsHealpix,
    PointingDetector,
    ScanMap,
    SimGround,
    SimNoise,
    StokesWeights,
    create_fake_sky,
)
from repro.utils.table import Table, format_seconds

NSIDE = 32


def main() -> None:
    fp = fake_hexagon_focalplane(n_pixels=7, sample_rate=20.0, net=0.5, fknee=0.1)
    data = Data()
    SimGround(
        fp,
        n_observations=2,
        n_samples=12000,
        az_min_deg=35.0,
        az_max_deg=85.0,
        el_deg=50.0,
        scan_rate_deg_s=2.0,
        turnaround_s=2.0,
    ).apply(data)
    DefaultNoiseModel().apply(data)
    data["sky_map"] = create_fake_sky(NSIDE, seed=33)
    SimNoise().apply(data)

    ob = data.obs[0]
    scans = ob.intervals["scan"]
    table = Table(["quantity", "value"], title="ground observation structure")
    table.add_row(["observations", len(data.obs)])
    table.add_row(["detectors", ob.n_detectors])
    table.add_row(["samples/observation", ob.n_samples])
    table.add_row(["constant-velocity sweeps", len(scans)])
    table.add_row(["left sweeps", len(ob.intervals["scan_left"])])
    table.add_row(["right sweeps", len(ob.intervals["scan_right"])])
    table.add_row(
        ["turnaround fraction", f"{1 - scans.n_samples / ob.n_samples:.1%}"]
    )
    table.print()

    # The same accelerated pipeline as the satellite benchmark -- the
    # modular-kernel design means nothing ground-specific is needed.
    accel = OmpTargetRuntime(SimulatedDevice())
    pipe = Pipeline(
        [
            PointingDetector(shared_flag_mask=SimGround.SHARED_FLAG_TURNAROUND),
            PixelsHealpix(
                nside=NSIDE, nest=True, shared_flag_mask=SimGround.SHARED_FLAG_TURNAROUND
            ),
            StokesWeights(mode="IQU"),
            ScanMap(),
            NoiseWeight(),
            BuildNoiseWeighted(
                n_pix=healpix_npix(NSIDE), nnz=3, use_det_weights=False
            ),
        ],
        implementation=ImplementationType.OMP_TARGET,
        accel=accel,
    )
    pipe.apply(data)

    hit = np.flatnonzero(np.any(data["zmap"] != 0, axis=1))
    cov = Table(["quantity", "value"], title="pipeline results (simulated GPU)")
    cov.add_row(["pixels hit", len(hit)])
    cov.add_row(["sky fraction", f"{len(hit) / healpix_npix(NSIDE):.1%}"])
    cov.add_row(["virtual device time", format_seconds(accel.device.clock.now)])
    cov.add_row(["kernel launches", accel.device.kernels_launched])
    cov.print()


if __name__ == "__main__":
    main()
