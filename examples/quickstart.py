#!/usr/bin/env python
"""Quickstart: simulate a small satellite dataset and make a map.

Runs the full benchmark workflow of the paper at toy scale on the CPU
baseline: simulate the scan and signal, run the processing pipeline, and
destripe into a map.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import ImplementationType
from repro.utils.table import Table, format_bytes, format_seconds
from repro.workflows.satellite import SIZES, run_satellite_benchmark


def main() -> None:
    size = SIZES["tiny"]
    print(f"running the '{size.name}' satellite benchmark:")
    print(
        f"  {size.n_observations} observations x {size.n_detectors} detectors "
        f"x {size.n_samples} samples (nside {size.nside})"
    )
    print(f"  modeled full-scale data volume: {format_bytes(size.total_bytes)}")
    print()

    result = run_satellite_benchmark(size, ImplementationType.NUMPY)

    destriped = result["destriped_map"]
    hit = np.any(destriped != 0, axis=1)
    table = Table(["quantity", "value"], title="quickstart results")
    table.add_row(["wall time", format_seconds(result["wall_seconds"])])
    table.add_row(["map-maker CG iterations", result["mapmaker_iterations"]])
    table.add_row(["pixels hit", int(hit.sum())])
    table.add_row(["map RMS (I)", float(destriped[hit, 0].std())])
    table.add_row(["map RMS (Q)", float(destriped[hit, 1].std())])
    table.add_row(["map RMS (U)", float(destriped[hit, 2].std())])
    table.print()

    print("next steps:")
    print("  examples/satellite_benchmark.py  -- choose size and GPU backend")
    print("  examples/mapmaking.py            -- destriping in detail")
    print("  examples/kernel_comparison.py    -- the 4 kernel implementations")
    print("  examples/gpu_porting_tour.py     -- the JAX and OMP programming models")


if __name__ == "__main__":
    main()
