#!/usr/bin/env python
"""The paper's profiling workflow (§3.2.3), reproduced end to end.

TOAST collects coarse per-function timings through a decorator and dumps
them to CSV; the authors added a script merging several CSVs into a
comparative spreadsheet -- "a tremendously useful and simple tool to
identify operations where our updated code spent a suspect amount of
time".  This example runs the same pipeline under two kernel
implementations, dumps one CSV per run, and prints the merged comparison.

Usage::

    python examples/profiling_comparison.py
"""

import tempfile
from pathlib import Path

from repro.accel import SimulatedDevice
from repro.core import ImplementationType
from repro.core.timing import global_timers, merge_timing_csv
from repro.ompshim import OmpTargetRuntime
from repro.workflows.satellite import SIZES, run_satellite_benchmark


def timed_run(impl: ImplementationType, csv_path: Path) -> None:
    global_timers.clear()
    accel = None
    if impl is not ImplementationType.NUMPY:
        accel = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 28))
    run_satellite_benchmark(SIZES["small"], impl, accel=accel)
    global_timers.dump_csv(csv_path)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cpu_csv = Path(tmp) / "cpu.csv"
        gpu_csv = Path(tmp) / "omp_target.csv"

        print("running the small benchmark with the CPU baseline kernels ...")
        timed_run(ImplementationType.NUMPY, cpu_csv)
        print("running the small benchmark with the OMP Target kernels ...")
        timed_run(ImplementationType.OMP_TARGET, gpu_csv)

        print()
        print(merge_timing_csv([cpu_csv, gpu_csv], labels=["cpu", "omp_target"]))
        print()
        print("reading the table: the right-most column is the per-operation")
        print("ratio -- the paper's team scanned exactly this view for values")
        print("far from the expected speedup to find misbehaving operations.")


if __name__ == "__main__":
    main()
